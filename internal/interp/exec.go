package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/mem"
)

// This file is the fast execution engine. It runs the pre-decoded
// instruction arrays built by Compile and must stay observably
// bit-identical to reference.go: same return values, same Stats (Steps,
// Cycles, and every event counter, at every hook observation point),
// same final heap words, same errors at the same instruction. The
// parity-sensitive orderings are:
//
//   - Steps is incremented and checked against the limit BEFORE an
//     instruction executes; a batched run only proceeds when the whole
//     run fits under the limit, otherwise it falls back to single
//     stepping so ErrStepLimit fires on exactly the same instruction.
//   - A fell-off-the-block diagnostic does not count a step (the
//     reference detects it before incrementing).
//   - Calls++ and the call cost are charged before the callee runs
//     (and before depth/extern/undefined resolution).
//   - Alloc/Free errors abort before their counters are bumped;
//     Div/Rem by zero aborts before the op's cycles are charged.

// acquireFrame returns a zeroed register frame of n words carved from
// the grow-only frame stack, plus the mark to restore regTop to on
// release. Growth allocates a fresh backing array; outstanding frames
// keep their old arrays alive through their slices, so growth never
// copies or invalidates live frames.
func (ip *Interp) acquireFrame(n int) ([]uint64, int) {
	mark := ip.regTop
	var frame []uint64
	if mark+n <= cap(ip.regBuf) {
		frame = ip.regBuf[mark : mark+n]
		for i := range frame {
			frame[i] = 0
		}
	} else {
		ip.regBuf = make([]uint64, mark+n, 2*(mark+n)+256)
		frame = ip.regBuf[mark : mark+n]
	}
	ip.regTop = mark + n
	return frame, mark
}

// acquireArgs returns an n-word call-argument scratch slice from the
// grow-only argument stack. The callee copies arguments into its frame
// at entry, so slices are dead by the time any deeper call could grow
// the stack.
func (ip *Interp) acquireArgs(n int) ([]uint64, int) {
	mark := ip.argTop
	if mark+n > cap(ip.argBuf) {
		ip.argBuf = make([]uint64, mark+n, 2*(mark+n)+64)
	}
	ip.argTop = mark + n
	return ip.argBuf[mark : mark+n : mark+n], mark
}

// fastCall is the compiled-path analogue of refCall: function
// resolution, extern dispatch, and depth limiting with identical
// semantics, then execution of the compiled body.
func (ip *Interp) fastCall(name string, args []uint64, depth int) (uint64, error) {
	if depth > ip.curMaxDepth {
		return 0, ErrDepth
	}
	cf, ok := ip.prog.funcs[name]
	if !ok {
		if ip.Hooks.Extern != nil {
			ret, cost, err := ip.Hooks.Extern(name, args)
			ip.Stats.Cycles += cost
			return ret, err
		}
		return 0, fmt.Errorf("%w: %s", ErrUndefined, name)
	}
	return ip.execFn(cf, args, depth)
}

// execFn checks arity, sets up a pooled register frame, and runs the
// compiled body.
func (ip *Interp) execFn(cf *cfunc, args []uint64, depth int) (uint64, error) {
	if len(args) != cf.numParams {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", cf.name, cf.numParams, len(args))
	}
	regs, mark := ip.acquireFrame(cf.numRegs)
	ip.Stats.FrameWords += int64(cf.numRegs)
	if int64(cf.numRegs) > ip.Stats.MaxFrameRegs {
		ip.Stats.MaxFrameRegs = int64(cf.numRegs)
	}
	copy(regs, args)
	ret, err := ip.exec(cf, regs, depth)
	ip.regTop = mark
	return ret, err
}

func (ip *Interp) exec(cf *cfunc, regs []uint64, depth int) (uint64, error) {
	st := &ip.Stats
	heap := ip.Heap
	memHook := ip.Hooks.MemAccess
	maxSteps := ip.curMaxSteps
	code := cf.code
	pc := 0
	for {
		in := &code[pc]
		if in.runLen > 1 && st.Steps+int64(in.runLen) <= maxSteps {
			// Straight-line ALU run: account all steps and cycles up
			// front, then execute values only. No instruction in the
			// run can fault, touch memory, or observe Stats, so the
			// post-run state is identical to per-instruction order.
			st.Steps += int64(in.runLen)
			st.Cycles += in.runCost
			end := pc + int(in.runLen)
			for ; pc < end; pc++ {
				c := &code[pc]
				switch ir.Op(c.op) {
				case ir.OpConst:
					regs[c.dst] = uint64(c.imm)
				case ir.OpFConst:
					regs[c.dst] = uint64(c.imm)
				case ir.OpMov:
					regs[c.dst] = regs[c.a]
				case ir.OpAdd:
					regs[c.dst] = regs[c.a] + regs[c.b]
				case ir.OpSub:
					regs[c.dst] = regs[c.a] - regs[c.b]
				case ir.OpMul:
					regs[c.dst] = uint64(int64(regs[c.a]) * int64(regs[c.b]))
				case ir.OpAnd:
					regs[c.dst] = regs[c.a] & regs[c.b]
				case ir.OpOr:
					regs[c.dst] = regs[c.a] | regs[c.b]
				case ir.OpXor:
					regs[c.dst] = regs[c.a] ^ regs[c.b]
				case ir.OpShl:
					regs[c.dst] = regs[c.a] << (regs[c.b] & 63)
				case ir.OpShr:
					regs[c.dst] = regs[c.a] >> (regs[c.b] & 63)
				case ir.OpFAdd:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) + math.Float64frombits(regs[c.b]))
				case ir.OpFSub:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) - math.Float64frombits(regs[c.b]))
				case ir.OpFMul:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) * math.Float64frombits(regs[c.b]))
				case ir.OpFDiv:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) / math.Float64frombits(regs[c.b]))
				case ir.OpICmp:
					regs[c.dst] = boolToU64(icmp(ir.Pred(c.pred), int64(regs[c.a]), int64(regs[c.b])))
				case ir.OpFCmp:
					regs[c.dst] = boolToU64(fcmp(ir.Pred(c.pred), math.Float64frombits(regs[c.a]), math.Float64frombits(regs[c.b])))
				}
			}
			continue
		}
		if in.op < 0 {
			// Detected before the step counter moves, like the
			// reference's bounds check.
			return 0, fmt.Errorf("interp: fell off block %s.%s", cf.name, cf.blocks[in.blk].Name)
		}
		st.Steps++
		if st.Steps > maxSteps {
			return 0, ip.stepLimitErr()
		}
		switch ir.Op(in.op) {
		case ir.OpConst:
			regs[in.dst] = uint64(in.imm)
			st.Cycles += in.cost
		case ir.OpFConst:
			regs[in.dst] = uint64(in.imm)
			st.Cycles += in.cost
		case ir.OpMov:
			regs[in.dst] = regs[in.a]
			st.Cycles += in.cost
		case ir.OpAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
			st.Cycles += in.cost
		case ir.OpSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
			st.Cycles += in.cost
		case ir.OpMul:
			regs[in.dst] = uint64(int64(regs[in.a]) * int64(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpDiv:
			b := int64(regs[in.b])
			if b == 0 {
				return 0, fmt.Errorf("interp: division by zero in %s.%s", cf.name, cf.blocks[in.blk].Name)
			}
			regs[in.dst] = uint64(int64(regs[in.a]) / b)
			st.Cycles += in.cost
		case ir.OpRem:
			b := int64(regs[in.b])
			if b == 0 {
				return 0, fmt.Errorf("interp: modulo by zero in %s.%s", cf.name, cf.blocks[in.blk].Name)
			}
			regs[in.dst] = uint64(int64(regs[in.a]) % b)
			st.Cycles += in.cost
		case ir.OpAnd:
			regs[in.dst] = regs[in.a] & regs[in.b]
			st.Cycles += in.cost
		case ir.OpOr:
			regs[in.dst] = regs[in.a] | regs[in.b]
			st.Cycles += in.cost
		case ir.OpXor:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
			st.Cycles += in.cost
		case ir.OpShl:
			regs[in.dst] = regs[in.a] << (regs[in.b] & 63)
			st.Cycles += in.cost
		case ir.OpShr:
			regs[in.dst] = regs[in.a] >> (regs[in.b] & 63)
			st.Cycles += in.cost
		case ir.OpFAdd:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) + math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpFSub:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) - math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpFMul:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) * math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpFDiv:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) / math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpICmp:
			regs[in.dst] = boolToU64(icmp(ir.Pred(in.pred), int64(regs[in.a]), int64(regs[in.b])))
			st.Cycles += in.cost
		case ir.OpFCmp:
			regs[in.dst] = boolToU64(fcmp(ir.Pred(in.pred), math.Float64frombits(regs[in.a]), math.Float64frombits(regs[in.b])))
			st.Cycles += in.cost
		case ir.OpLoad:
			addr := mem.Addr(int64(regs[in.a]) + in.imm)
			st.Loads++
			st.Cycles += in.cost
			if memHook != nil {
				st.Cycles += memHook(addr, false)
			}
			regs[in.dst] = heap.Load(addr)
		case ir.OpStore:
			addr := mem.Addr(int64(regs[in.a]) + in.imm)
			st.Stores++
			st.Cycles += in.cost
			if memHook != nil {
				st.Cycles += memHook(addr, true)
			}
			heap.Store(addr, regs[in.b])
		case ir.OpAlloc:
			size := uint64(in.imm)
			if in.a >= 0 {
				size = regs[in.a]
			}
			a, err := heap.Alloc(size)
			if err != nil {
				return 0, err
			}
			regs[in.dst] = uint64(a)
			st.Allocs++
			st.Cycles += in.cost
		case ir.OpFree:
			if err := heap.Free(mem.Addr(regs[in.a])); err != nil {
				return 0, err
			}
			st.Frees++
			st.Cycles += in.cost
		case ir.OpCall:
			st.Calls++
			st.Cycles += in.cost
			if depth+1 > ip.curMaxDepth {
				return 0, ErrDepth
			}
			call := &cf.calls[in.imm]
			var ret uint64
			var err error
			if call.calleeF != nil {
				cargs, amark := ip.acquireArgs(len(call.args))
				for i, r := range call.args {
					cargs[i] = regs[r]
				}
				ret, err = ip.execFn(call.calleeF, cargs, depth+1)
				ip.argTop = amark
			} else if ip.Hooks.Extern != nil {
				// Fresh slice: the extern hook may retain its args.
				cargs := make([]uint64, len(call.args))
				for i, r := range call.args {
					cargs[i] = regs[r]
				}
				var cost int64
				ret, cost, err = ip.Hooks.Extern(call.callee, cargs)
				st.Cycles += cost
			} else {
				return 0, fmt.Errorf("%w: %s", ErrUndefined, call.callee)
			}
			if err != nil {
				return 0, err
			}
			regs[in.dst] = ret
		case ir.OpGuard:
			st.Guards++
			if in.region {
				if ip.Hooks.GuardRegion != nil {
					c := ip.Hooks.GuardRegion(mem.Addr(regs[in.a]))
					st.Cycles += c
					st.GuardCycles += c
				}
			} else if ip.Hooks.Guard != nil {
				c := ip.Hooks.Guard(mem.Addr(int64(regs[in.a]) + in.imm))
				st.Cycles += c
				st.GuardCycles += c
			}
		case ir.OpTrackAlloc:
			if ip.Hooks.TrackAlloc != nil {
				sz := uint64(in.imm)
				if in.b >= 0 {
					sz = regs[in.b]
				}
				c := ip.Hooks.TrackAlloc(mem.Addr(regs[in.a]), sz)
				st.Cycles += c
				st.TrackCycles += c
			}
		case ir.OpTrackFree:
			if ip.Hooks.TrackFree != nil {
				c := ip.Hooks.TrackFree(mem.Addr(regs[in.a]))
				st.Cycles += c
				st.TrackCycles += c
			}
		case ir.OpTrackEsc:
			if ip.Hooks.TrackEsc != nil {
				loc := mem.Addr(int64(regs[in.a]) + in.imm)
				c := ip.Hooks.TrackEsc(loc, regs[in.b])
				st.Cycles += c
				st.TrackCycles += c
			}
		case ir.OpYieldCheck:
			st.YieldChecks++
			if ip.Hooks.YieldCheck != nil {
				c := ip.Hooks.YieldCheck(st.Cycles)
				st.Cycles += c
				st.YieldCycles += c
			}
		case ir.OpPoll:
			st.Polls++
			if ip.Hooks.Poll != nil {
				c := ip.Hooks.Poll()
				st.Cycles += c
				st.PollCycles += c
			}
		case ir.OpBr:
			st.Cycles += in.cost
			if regs[in.a] != 0 {
				pc = int(in.target)
			} else {
				pc = int(in.els)
			}
			if pc < 0 {
				return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
			}
			continue
		case ir.OpJmp:
			st.Cycles += in.cost
			pc = int(in.target)
			if pc < 0 {
				return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
			}
			continue
		case ir.OpRet:
			st.Cycles += in.cost
			if in.a < 0 {
				return 0, nil
			}
			return regs[in.a], nil
		default:
			return 0, fmt.Errorf("interp: unimplemented op %s", ir.Op(in.op))
		}
		pc++
	}
}

package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/mem"
)

// This file is the fast execution engine. It runs the pre-decoded
// instruction arrays built by Compile and must stay observably
// bit-identical to reference.go: same return values, same Stats (Steps,
// Cycles, and every event counter, at every hook observation point),
// same final heap words, same errors at the same instruction. The
// parity-sensitive orderings are:
//
//   - Steps is incremented and checked against the limit BEFORE an
//     instruction executes; a batched run only proceeds when the whole
//     run fits under the limit, otherwise it falls back to single
//     stepping so ErrStepLimit fires on exactly the same instruction.
//   - A fell-off-the-block diagnostic does not count a step (the
//     reference detects it before incrementing).
//   - Calls++ and the call cost are charged before the callee runs
//     (and before depth/extern/undefined resolution).
//   - Alloc/Free errors abort before their counters are bumped;
//     Div/Rem by zero aborts before the op's cycles are charged.

// acquireFrame returns a zeroed register frame of n words carved from
// the grow-only frame stack, plus the mark to restore regTop to on
// release. Growth allocates a fresh backing array; outstanding frames
// keep their old arrays alive through their slices, so growth never
// copies or invalidates live frames.
func (ip *Interp) acquireFrame(n int) ([]uint64, int) {
	mark := ip.regTop
	var frame []uint64
	if mark+n <= cap(ip.regBuf) {
		frame = ip.regBuf[mark : mark+n]
		for i := range frame {
			frame[i] = 0
		}
	} else {
		ip.regBuf = make([]uint64, mark+n, 2*(mark+n)+256)
		frame = ip.regBuf[mark : mark+n]
	}
	ip.regTop = mark + n
	return frame, mark
}

// acquireArgs returns an n-word call-argument scratch slice from the
// grow-only argument stack. The callee copies arguments into its frame
// at entry, so slices are dead by the time any deeper call could grow
// the stack.
func (ip *Interp) acquireArgs(n int) ([]uint64, int) {
	mark := ip.argTop
	if mark+n > cap(ip.argBuf) {
		ip.argBuf = make([]uint64, mark+n, 2*(mark+n)+64)
	}
	ip.argTop = mark + n
	return ip.argBuf[mark : mark+n : mark+n], mark
}

// fastCall is the compiled-path analogue of refCall: function
// resolution, extern dispatch, and depth limiting with identical
// semantics, then execution of the compiled body.
func (ip *Interp) fastCall(name string, args []uint64, depth int) (uint64, error) {
	if depth > ip.curMaxDepth {
		return 0, ErrDepth
	}
	cf, ok := ip.prog.funcs[name]
	if !ok {
		if ip.Hooks.Extern != nil {
			ret, cost, err := ip.Hooks.Extern(name, args)
			ip.Stats.Cycles += cost
			return ret, err
		}
		return 0, fmt.Errorf("%w: %s", ErrUndefined, name)
	}
	return ip.execFn(cf, args, depth)
}

// execFn checks arity, sets up a pooled register frame, and runs the
// compiled body.
func (ip *Interp) execFn(cf *cfunc, args []uint64, depth int) (uint64, error) {
	if len(args) != cf.numParams {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", cf.name, cf.numParams, len(args))
	}
	regs, mark := ip.acquireFrame(cf.numRegs)
	ip.Stats.FrameWords += int64(cf.numRegs)
	if int64(cf.numRegs) > ip.Stats.MaxFrameRegs {
		ip.Stats.MaxFrameRegs = int64(cf.numRegs)
	}
	copy(regs, args)
	ret, err := ip.exec(cf, regs, depth)
	ip.regTop = mark
	return ret, err
}

// aluHot and aluHot2 together evaluate the pure-ALU ops that dominate
// fused pairs in the kernel suite (add/mov addressing, float
// accumulate/scale, index mul/xor/shift mixing). They are split in two
// because each must stay under the compiler's inlining budget on its
// own — chained at the call site (`aluHot || aluHot2 || aluEval`), both
// inline into the fused dispatch arms, so the eight ops of the fusion
// policy's inline set (ir/fusion.go) execute with no call overhead;
// everything else falls back to the complete, non-inlined aluEval.
// None of these ops read pred or imm.
func aluHot(op ir.Op, a, b int32, regs []uint64) (uint64, bool) {
	switch op {
	case ir.OpAdd:
		return regs[a] + regs[b], true
	case ir.OpMov:
		return regs[a], true
	case ir.OpFAdd:
		return math.Float64bits(math.Float64frombits(regs[a]) + math.Float64frombits(regs[b])), true
	case ir.OpFMul:
		return math.Float64bits(math.Float64frombits(regs[a]) * math.Float64frombits(regs[b])), true
	}
	return 0, false
}

func aluHot2(op ir.Op, a, b int32, regs []uint64) (uint64, bool) {
	switch op {
	case ir.OpSub:
		return regs[a] - regs[b], true
	case ir.OpMul:
		return uint64(int64(regs[a]) * int64(regs[b])), true
	case ir.OpXor:
		return regs[a] ^ regs[b], true
	case ir.OpShr:
		return regs[a] >> (regs[b] & 63), true
	}
	return 0, false
}

// aluEval executes one pure-ALU constituent of a fused superinstruction,
// mirroring the single-op dispatch arms bit for bit. Const/FConst never
// index regs (their operands are NoReg = -1).
func aluEval(op ir.Op, pred uint8, a, b int32, imm int64, regs []uint64) uint64 {
	switch op {
	case ir.OpConst, ir.OpFConst:
		return uint64(imm)
	case ir.OpMov:
		return regs[a]
	case ir.OpAdd:
		return regs[a] + regs[b]
	case ir.OpSub:
		return regs[a] - regs[b]
	case ir.OpMul:
		return uint64(int64(regs[a]) * int64(regs[b]))
	case ir.OpAnd:
		return regs[a] & regs[b]
	case ir.OpOr:
		return regs[a] | regs[b]
	case ir.OpXor:
		return regs[a] ^ regs[b]
	case ir.OpShl:
		return regs[a] << (regs[b] & 63)
	case ir.OpShr:
		return regs[a] >> (regs[b] & 63)
	case ir.OpFAdd:
		return math.Float64bits(math.Float64frombits(regs[a]) + math.Float64frombits(regs[b]))
	case ir.OpFSub:
		return math.Float64bits(math.Float64frombits(regs[a]) - math.Float64frombits(regs[b]))
	case ir.OpFMul:
		return math.Float64bits(math.Float64frombits(regs[a]) * math.Float64frombits(regs[b]))
	case ir.OpFDiv:
		return math.Float64bits(math.Float64frombits(regs[a]) / math.Float64frombits(regs[b]))
	case ir.OpICmp:
		return boolToU64(icmp(ir.Pred(pred), int64(regs[a]), int64(regs[b])))
	case ir.OpFCmp:
		return boolToU64(fcmp(ir.Pred(pred), math.Float64frombits(regs[a]), math.Float64frombits(regs[b])))
	}
	return 0
}

func (ip *Interp) exec(cf *cfunc, regs []uint64, depth int) (uint64, error) {
	st := &ip.Stats
	heap := ip.Heap
	memHook := ip.Hooks.MemAccess
	maxSteps := ip.curMaxSteps
	code := cf.code
	pc := 0
	for {
		in := &code[pc]
		if in.runLen > 1 && st.Steps+int64(in.runLen) <= maxSteps {
			// Straight-line ALU run: account all steps and cycles up
			// front, then execute values only. No instruction in the
			// run can fault, touch memory, or observe Stats, so the
			// post-run state is identical to per-instruction order.
			st.Steps += int64(in.runLen)
			st.Cycles += in.runCost
			end := pc + int(in.runLen)
			for ; pc < end; pc++ {
				c := &code[pc]
				switch ir.Op(c.op) {
				case ir.OpConst:
					regs[c.dst] = uint64(c.imm)
				case ir.OpFConst:
					regs[c.dst] = uint64(c.imm)
				case ir.OpMov:
					regs[c.dst] = regs[c.a]
				case ir.OpAdd:
					regs[c.dst] = regs[c.a] + regs[c.b]
				case ir.OpSub:
					regs[c.dst] = regs[c.a] - regs[c.b]
				case ir.OpMul:
					regs[c.dst] = uint64(int64(regs[c.a]) * int64(regs[c.b]))
				case ir.OpAnd:
					regs[c.dst] = regs[c.a] & regs[c.b]
				case ir.OpOr:
					regs[c.dst] = regs[c.a] | regs[c.b]
				case ir.OpXor:
					regs[c.dst] = regs[c.a] ^ regs[c.b]
				case ir.OpShl:
					regs[c.dst] = regs[c.a] << (regs[c.b] & 63)
				case ir.OpShr:
					regs[c.dst] = regs[c.a] >> (regs[c.b] & 63)
				case ir.OpFAdd:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) + math.Float64frombits(regs[c.b]))
				case ir.OpFSub:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) - math.Float64frombits(regs[c.b]))
				case ir.OpFMul:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) * math.Float64frombits(regs[c.b]))
				case ir.OpFDiv:
					regs[c.dst] = math.Float64bits(math.Float64frombits(regs[c.a]) / math.Float64frombits(regs[c.b]))
				case ir.OpICmp:
					regs[c.dst] = boolToU64(icmp(ir.Pred(c.pred), int64(regs[c.a]), int64(regs[c.b])))
				case ir.OpFCmp:
					regs[c.dst] = boolToU64(fcmp(ir.Pred(c.pred), math.Float64frombits(regs[c.a]), math.Float64frombits(regs[c.b])))
				}
			}
			continue
		}
		if in.op < 0 {
			// Detected before the step counter moves, like the
			// reference's bounds check.
			return 0, fmt.Errorf("interp: fell off block %s.%s", cf.name, cf.blocks[in.blk].Name)
		}
		if in.op >= opFusedBase {
			// Fused superinstruction: two constituent instructions in
			// one dispatch with one step-limit check. in.cost folds
			// both constituents; arms whose second constituent follows
			// a mem hook split the charge around it (the slot's spare
			// runCost field carries the split) so a hook closure that
			// reads Stats.Cycles observes the reference's value.
			if st.Steps+2 > maxSteps {
				// The pair does not fit under the step budget: execute
				// the first constituent singly — increment, check, run —
				// then fall through to the intact second slot at pc+1,
				// whose own check fires the limit. ErrStepLimit thus
				// lands on exactly the same instruction, with the same
				// Stats, as the reference engine's per-step walk.
				st.Steps++
				if st.Steps > maxSteps {
					return 0, ip.stepLimitErr()
				}
				switch in.op {
				case opFusedICmpBr:
					regs[in.dst] = boolToU64(icmp(ir.Pred(in.pred), int64(regs[in.a]), int64(regs[in.b])))
					st.Cycles += costOf(ir.OpICmp, ip.prog.cost)
				case opFusedFCmpBr:
					regs[in.dst] = boolToU64(fcmp(ir.Pred(in.pred), math.Float64frombits(regs[in.a]), math.Float64frombits(regs[in.b])))
					st.Cycles += costOf(ir.OpFCmp, ip.prog.cost)
				case opFusedLoadALU, opFusedLoadLoad:
					addr := mem.Addr(int64(regs[in.a]) + in.imm)
					st.Loads++
					st.Cycles += costOf(ir.OpLoad, ip.prog.cost)
					if memHook != nil {
						st.Cycles += memHook(addr, false)
					}
					regs[in.dst] = heap.Load(addr)
				case opFusedStoreALU:
					addr := mem.Addr(int64(regs[in.a]) + in.imm)
					st.Stores++
					st.Cycles += costOf(ir.OpStore, ip.prog.cost)
					if memHook != nil {
						st.Cycles += memHook(addr, true)
					}
					heap.Store(addr, regs[in.b])
				case opFusedALULoad, opFusedALUStore, opFusedALUALU, opFusedALUJmp:
					regs[in.dst] = aluEval(ir.Op(in.aux), in.pred, in.a, in.b, in.imm, regs)
					st.Cycles += costOf(ir.Op(in.aux), ip.prog.cost)
				case opFusedGuardLoad, opFusedGuardStore:
					// Fused guards are always the non-region form.
					st.Guards++
					if ip.Hooks.Guard != nil {
						c := ip.Hooks.Guard(mem.Addr(int64(regs[in.a]) + in.imm))
						st.Cycles += c
						st.GuardCycles += c
					}
				}
				pc++
				continue
			}
			st.Steps += 2
			switch in.op {
			case opFusedICmpBr:
				st.Cycles += in.cost
				v := icmp(ir.Pred(in.pred), int64(regs[in.a]), int64(regs[in.b]))
				regs[in.dst] = boolToU64(v)
				if v {
					pc = int(in.target)
				} else {
					pc = int(in.els)
				}
				if pc < 0 {
					return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
				}
				continue
			case opFusedFCmpBr:
				st.Cycles += in.cost
				v := fcmp(ir.Pred(in.pred), math.Float64frombits(regs[in.a]), math.Float64frombits(regs[in.b]))
				regs[in.dst] = boolToU64(v)
				if v {
					pc = int(in.target)
				} else {
					pc = int(in.els)
				}
				if pc < 0 {
					return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
				}
				continue
			case opFusedLoadALU:
				addr := mem.Addr(int64(regs[in.a]) + in.imm)
				st.Loads++
				// Split the combined charge around the hook: the ALU
				// constituent's cost (in.runCost) lands after, so a hook
				// closure reading Stats.Cycles sees the reference's value.
				st.Cycles += in.cost - in.runCost
				if memHook != nil {
					st.Cycles += memHook(addr, false)
				}
				regs[in.dst] = heap.Load(addr)
				if v, ok := aluHot(ir.Op(in.aux), in.a2(), in.b2(), regs); ok {
					regs[in.dst2] = v
				} else if v, ok := aluHot2(ir.Op(in.aux), in.a2(), in.b2(), regs); ok {
					regs[in.dst2] = v
				} else {
					regs[in.dst2] = aluEval(ir.Op(in.aux), in.pred2, in.a2(), in.b2(), 0, regs)
				}
				st.Cycles += in.runCost
			case opFusedALULoad:
				if v, ok := aluHot(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else if v, ok := aluHot2(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else {
					regs[in.dst] = aluEval(ir.Op(in.aux), in.pred, in.a, in.b, in.imm, regs)
				}
				addr := mem.Addr(int64(regs[in.a2()]) + in.imm2())
				st.Loads++
				st.Cycles += in.cost
				if memHook != nil {
					st.Cycles += memHook(addr, false)
				}
				regs[in.dst2] = heap.Load(addr)
			case opFusedALUStore:
				if v, ok := aluHot(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else if v, ok := aluHot2(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else {
					regs[in.dst] = aluEval(ir.Op(in.aux), in.pred, in.a, in.b, in.imm, regs)
				}
				addr := mem.Addr(int64(regs[in.a2()]) + in.imm2())
				st.Stores++
				st.Cycles += in.cost
				if memHook != nil {
					st.Cycles += memHook(addr, true)
				}
				heap.Store(addr, regs[in.b2()])
			case opFusedGuardLoad:
				st.Guards++
				if ip.Hooks.Guard != nil {
					c := ip.Hooks.Guard(mem.Addr(int64(regs[in.a]) + in.imm))
					st.Cycles += c
					st.GuardCycles += c
				}
				addr := mem.Addr(int64(regs[in.a2()]) + in.imm2())
				st.Loads++
				st.Cycles += in.cost
				if memHook != nil {
					st.Cycles += memHook(addr, false)
				}
				regs[in.dst2] = heap.Load(addr)
			case opFusedGuardStore:
				st.Guards++
				if ip.Hooks.Guard != nil {
					c := ip.Hooks.Guard(mem.Addr(int64(regs[in.a]) + in.imm))
					st.Cycles += c
					st.GuardCycles += c
				}
				addr := mem.Addr(int64(regs[in.a2()]) + in.imm2())
				st.Stores++
				st.Cycles += in.cost
				if memHook != nil {
					st.Cycles += memHook(addr, true)
				}
				heap.Store(addr, regs[in.b2()])
			case opFusedALUALU:
				st.Cycles += in.cost
				if v, ok := aluHot(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else if v, ok := aluHot2(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else {
					regs[in.dst] = aluEval(ir.Op(in.aux), in.pred, in.a, in.b, in.imm, regs)
				}
				s2 := &code[pc+1]
				if v, ok := aluHot(ir.Op(s2.op), s2.a, s2.b, regs); ok {
					regs[s2.dst] = v
				} else if v, ok := aluHot2(ir.Op(s2.op), s2.a, s2.b, regs); ok {
					regs[s2.dst] = v
				} else {
					regs[s2.dst] = aluEval(ir.Op(s2.op), s2.pred, s2.a, s2.b, s2.imm, regs)
				}
			case opFusedLoadLoad:
				addr := mem.Addr(int64(regs[in.a]) + in.imm)
				st.Loads++
				// Both constituents are loads, so the halves of the
				// combined charge are exact; splitting them around the
				// hooks preserves the reference's observable Cycles.
				st.Cycles += in.cost / 2
				if memHook != nil {
					st.Cycles += memHook(addr, false)
				}
				regs[in.dst] = heap.Load(addr)
				addr2 := mem.Addr(int64(regs[in.a2()]) + in.imm2())
				st.Loads++
				st.Cycles += in.cost - in.cost/2
				if memHook != nil {
					st.Cycles += memHook(addr2, false)
				}
				regs[in.dst2] = heap.Load(addr2)
			case opFusedStoreALU:
				addr := mem.Addr(int64(regs[in.a]) + in.imm)
				st.Stores++
				st.Cycles += in.cost - in.runCost
				if memHook != nil {
					st.Cycles += memHook(addr, true)
				}
				heap.Store(addr, regs[in.b])
				if v, ok := aluHot(ir.Op(in.aux), in.a2(), in.b2(), regs); ok {
					regs[in.dst2] = v
				} else if v, ok := aluHot2(ir.Op(in.aux), in.a2(), in.b2(), regs); ok {
					regs[in.dst2] = v
				} else {
					regs[in.dst2] = aluEval(ir.Op(in.aux), in.pred2, in.a2(), in.b2(), 0, regs)
				}
				st.Cycles += in.runCost
			case opFusedALUJmp:
				st.Cycles += in.cost
				if v, ok := aluHot(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else if v, ok := aluHot2(ir.Op(in.aux), in.a, in.b, regs); ok {
					regs[in.dst] = v
				} else {
					regs[in.dst] = aluEval(ir.Op(in.aux), in.pred, in.a, in.b, in.imm, regs)
				}
				pc = int(in.target)
				if pc < 0 {
					return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
				}
				continue
			}
			pc += 2
			continue
		}
		st.Steps++
		if st.Steps > maxSteps {
			return 0, ip.stepLimitErr()
		}
		switch ir.Op(in.op) {
		case ir.OpConst:
			regs[in.dst] = uint64(in.imm)
			st.Cycles += in.cost
		case ir.OpFConst:
			regs[in.dst] = uint64(in.imm)
			st.Cycles += in.cost
		case ir.OpMov:
			regs[in.dst] = regs[in.a]
			st.Cycles += in.cost
		case ir.OpAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
			st.Cycles += in.cost
		case ir.OpSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
			st.Cycles += in.cost
		case ir.OpMul:
			regs[in.dst] = uint64(int64(regs[in.a]) * int64(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpDiv:
			b := int64(regs[in.b])
			if b == 0 {
				return 0, fmt.Errorf("interp: division by zero in %s.%s", cf.name, cf.blocks[in.blk].Name)
			}
			regs[in.dst] = uint64(int64(regs[in.a]) / b)
			st.Cycles += in.cost
		case ir.OpRem:
			b := int64(regs[in.b])
			if b == 0 {
				return 0, fmt.Errorf("interp: modulo by zero in %s.%s", cf.name, cf.blocks[in.blk].Name)
			}
			regs[in.dst] = uint64(int64(regs[in.a]) % b)
			st.Cycles += in.cost
		case ir.OpAnd:
			regs[in.dst] = regs[in.a] & regs[in.b]
			st.Cycles += in.cost
		case ir.OpOr:
			regs[in.dst] = regs[in.a] | regs[in.b]
			st.Cycles += in.cost
		case ir.OpXor:
			regs[in.dst] = regs[in.a] ^ regs[in.b]
			st.Cycles += in.cost
		case ir.OpShl:
			regs[in.dst] = regs[in.a] << (regs[in.b] & 63)
			st.Cycles += in.cost
		case ir.OpShr:
			regs[in.dst] = regs[in.a] >> (regs[in.b] & 63)
			st.Cycles += in.cost
		case ir.OpFAdd:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) + math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpFSub:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) - math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpFMul:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) * math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpFDiv:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) / math.Float64frombits(regs[in.b]))
			st.Cycles += in.cost
		case ir.OpICmp:
			regs[in.dst] = boolToU64(icmp(ir.Pred(in.pred), int64(regs[in.a]), int64(regs[in.b])))
			st.Cycles += in.cost
		case ir.OpFCmp:
			regs[in.dst] = boolToU64(fcmp(ir.Pred(in.pred), math.Float64frombits(regs[in.a]), math.Float64frombits(regs[in.b])))
			st.Cycles += in.cost
		case ir.OpLoad:
			addr := mem.Addr(int64(regs[in.a]) + in.imm)
			st.Loads++
			st.Cycles += in.cost
			if memHook != nil {
				st.Cycles += memHook(addr, false)
			}
			regs[in.dst] = heap.Load(addr)
		case ir.OpStore:
			addr := mem.Addr(int64(regs[in.a]) + in.imm)
			st.Stores++
			st.Cycles += in.cost
			if memHook != nil {
				st.Cycles += memHook(addr, true)
			}
			heap.Store(addr, regs[in.b])
		case ir.OpAlloc:
			size := uint64(in.imm)
			if in.a >= 0 {
				size = regs[in.a]
			}
			a, err := heap.Alloc(size)
			if err != nil {
				return 0, err
			}
			regs[in.dst] = uint64(a)
			st.Allocs++
			st.Cycles += in.cost
		case ir.OpFree:
			if err := heap.Free(mem.Addr(regs[in.a])); err != nil {
				return 0, err
			}
			st.Frees++
			st.Cycles += in.cost
		case ir.OpCall:
			st.Calls++
			st.Cycles += in.cost
			if depth+1 > ip.curMaxDepth {
				return 0, ErrDepth
			}
			call := &cf.calls[in.imm]
			var ret uint64
			var err error
			if call.calleeF != nil {
				cargs, amark := ip.acquireArgs(len(call.args))
				for i, r := range call.args {
					cargs[i] = regs[r]
				}
				ret, err = ip.execFn(call.calleeF, cargs, depth+1)
				ip.argTop = amark
			} else if ip.Hooks.Extern != nil {
				// Fresh slice: the extern hook may retain its args.
				cargs := make([]uint64, len(call.args))
				for i, r := range call.args {
					cargs[i] = regs[r]
				}
				var cost int64
				ret, cost, err = ip.Hooks.Extern(call.callee, cargs)
				st.Cycles += cost
			} else {
				return 0, fmt.Errorf("%w: %s", ErrUndefined, call.callee)
			}
			if err != nil {
				return 0, err
			}
			regs[in.dst] = ret
		case ir.OpGuard:
			st.Guards++
			if in.region {
				if ip.Hooks.GuardRegion != nil {
					c := ip.Hooks.GuardRegion(mem.Addr(regs[in.a]))
					st.Cycles += c
					st.GuardCycles += c
				}
			} else if ip.Hooks.Guard != nil {
				c := ip.Hooks.Guard(mem.Addr(int64(regs[in.a]) + in.imm))
				st.Cycles += c
				st.GuardCycles += c
			}
		case ir.OpTrackAlloc:
			if ip.Hooks.TrackAlloc != nil {
				sz := uint64(in.imm)
				if in.b >= 0 {
					sz = regs[in.b]
				}
				c := ip.Hooks.TrackAlloc(mem.Addr(regs[in.a]), sz)
				st.Cycles += c
				st.TrackCycles += c
			}
		case ir.OpTrackFree:
			if ip.Hooks.TrackFree != nil {
				c := ip.Hooks.TrackFree(mem.Addr(regs[in.a]))
				st.Cycles += c
				st.TrackCycles += c
			}
		case ir.OpTrackEsc:
			if ip.Hooks.TrackEsc != nil {
				loc := mem.Addr(int64(regs[in.a]) + in.imm)
				c := ip.Hooks.TrackEsc(loc, regs[in.b])
				st.Cycles += c
				st.TrackCycles += c
			}
		case ir.OpYieldCheck:
			st.YieldChecks++
			if ip.Hooks.YieldCheck != nil {
				c := ip.Hooks.YieldCheck(st.Cycles)
				st.Cycles += c
				st.YieldCycles += c
			}
		case ir.OpPoll:
			st.Polls++
			if ip.Hooks.Poll != nil {
				c := ip.Hooks.Poll()
				st.Cycles += c
				st.PollCycles += c
			}
		case ir.OpBr:
			st.Cycles += in.cost
			if regs[in.a] != 0 {
				pc = int(in.target)
			} else {
				pc = int(in.els)
			}
			if pc < 0 {
				return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
			}
			continue
		case ir.OpJmp:
			st.Cycles += in.cost
			pc = int(in.target)
			if pc < 0 {
				return 0, fmt.Errorf("interp: branch to foreign block in %s", cf.name)
			}
			continue
		case ir.OpRet:
			st.Cycles += in.cost
			if in.a < 0 {
				return 0, nil
			}
			return regs[in.a], nil
		default:
			return 0, fmt.Errorf("interp: unimplemented op %s", ir.Op(in.op))
		}
		pc++
	}
}

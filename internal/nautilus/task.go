package nautilus

import (
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Task is a deferred unit of kernel work with a compiler-estimated size.
// The CCK OpenMP path (§V-A) compiles OpenMP pragmas into these: "CCK
// always targets a purely task-based execution model, which we map
// directly to the task framework within Nautilus, which can be viewed as
// a Linux-like SoftIRQ framework. Unlike SoftIRQs, however, if the
// compiler can estimate task size, its tasks can be run in the scheduler
// itself, even in interrupt context."
type Task struct {
	// Cycles is the compiler's size estimate (and the simulated cost).
	Cycles int64
	// Fn runs when the task executes (state mutation; cost is Cycles).
	Fn func()
}

// TaskStats account per-queue execution.
type TaskStats struct {
	Queued     int64
	RanDaemon  int64 // executed by the softirq daemon thread
	RanIRQ     int64 // executed directly in interrupt context
	WorkCycles int64
}

// taskQueue is the per-CPU task framework instance.
type taskQueue struct {
	k     *Kernel
	cpu   int
	tasks []*Task
	ev    *Event
	// daemon is the kthread that drains the queue outside IRQ context.
	daemon *Thread
	// stateAddr is the queue's control block, placed in the CPU's local
	// NUMA zone (lives for the kernel's lifetime).
	stateAddr mem.Addr
	Stats     TaskStats
}

// InitTasks creates the per-CPU task framework and its daemon threads.
// IRQBudget is the per-interrupt budget for inline execution: a task
// whose estimate fits runs right in the handler.
func (k *Kernel) InitTasks() {
	if k.taskqs != nil {
		return
	}
	k.taskqs = make([]*taskQueue, len(k.cpus))
	for i := range k.cpus {
		tq := &taskQueue{k: k, cpu: i}
		tq.ev = NewEvent(k)
		tq.stateAddr, _ = k.allocState(i, taskQueueBytes)
		k.taskqs[i] = tq
		tq.daemon = k.Spawn(i, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			for {
				t := tq.pop()
				if t == nil {
					tc.Wait(tq.ev)
					continue
				}
				tc.Compute(t.Cycles)
				tq.Stats.RanDaemon++
				tq.Stats.WorkCycles += t.Cycles
				if t.Fn != nil {
					t.Fn()
				}
			}
		})
	}
}

func (tq *taskQueue) pop() *Task {
	if len(tq.tasks) == 0 {
		return nil
	}
	t := tq.tasks[0]
	tq.tasks = tq.tasks[1:]
	return t
}

// QueueTask enqueues a task on cpu's framework and wakes the daemon.
// Call from engine/thread context (not from an interrupt handler —
// handlers use QueueTaskFromIRQ).
func (k *Kernel) QueueTask(cpu int, t *Task) {
	tq := k.taskqs[cpu]
	tq.tasks = append(tq.tasks, t)
	tq.Stats.Queued++
	tq.ev.wake(1)
	cs := k.cpus[cpu]
	if cs.idle {
		k.M.Eng.After(0, func() { cs.maybeDispatch() })
	}
}

// QueueTaskFromIRQ enqueues from interrupt context. If the task's
// estimated size fits within irqBudget, it runs inline in the handler
// (its cost charged to the interrupt) — the CCK trick that removes the
// scheduling round trip entirely for small tasks.
func (k *Kernel) QueueTaskFromIRQ(ctx *machine.IntrContext, cpu int, t *Task, irqBudget int64) {
	tq := k.taskqs[cpu]
	tq.Stats.Queued++
	if t.Cycles <= irqBudget {
		ctx.AddCost(t.Cycles)
		tq.Stats.RanIRQ++
		tq.Stats.WorkCycles += t.Cycles
		if t.Fn != nil {
			t.Fn()
		}
		return
	}
	tq.tasks = append(tq.tasks, t)
	// Wake the daemon; the handler already runs on this CPU, so the
	// daemon will be picked up after interrupt return.
	ctx.AddCost(k.Model.Nautilus.EventWakeup)
	tq.ev.wake(1)
	ctx.RequestResched()
}

// TaskQueueStats returns cpu's task accounting.
func (k *Kernel) TaskQueueStats(cpu int) *TaskStats { return &k.taskqs[cpu].Stats }

// PendingTasks returns cpu's queued-but-unexecuted count.
func (k *Kernel) PendingTasks(cpu int) int { return len(k.taskqs[cpu].tasks) }

// RunUntilTasksDrain advances the simulation until every task queue is
// empty (or the deadline passes); returns true if drained.
func (k *Kernel) RunUntilTasksDrain(deadline sim.Time) bool {
	for k.M.Eng.Now() < deadline {
		drained := true
		for i := range k.taskqs {
			if len(k.taskqs[i].tasks) > 0 {
				drained = false
				break
			}
		}
		if drained {
			return true
		}
		k.M.Eng.RunUntil(k.M.Eng.Now() + 10_000)
	}
	return false
}

package nautilus

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestThreadStateLocality checks that thread state blocks land in the
// spawning CPU's socket-local zone and are reclaimed on exit.
func TestThreadStateLocality(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, model.Default(), machine.Topology{Sockets: 2, CoresPerSocket: 2}, 7)
	k := New(m, DefaultConfig())
	t.Cleanup(k.Shutdown)

	if len(k.Mem.Zones) != 2 {
		t.Fatalf("zones = %d, want one per socket", len(k.Mem.Zones))
	}
	var threads []*Thread
	for cpu := 0; cpu < 4; cpu++ {
		th := k.Spawn(cpu, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			tc.Compute(100)
		})
		threads = append(threads, th)
	}
	for cpu, th := range threads {
		if th.StateAddr == 0 {
			t.Fatalf("cpu %d thread got no state block", cpu)
		}
		z := k.Mem.ZoneOf(th.StateAddr)
		if want := m.CPUs[cpu].Socket; z.ID != want {
			t.Fatalf("cpu %d state in zone %d, want socket-local zone %d", cpu, z.ID, want)
		}
	}
	eng.Run()

	st := k.MemStats()
	if st.StateAllocs != 4 || st.StateAllocFailed != 0 {
		t.Fatalf("mem stats = %+v", st)
	}
	// All four threads exited: their state is back in the magazines or
	// the zones. Drain and reconcile.
	live := 0
	for _, z := range k.Mem.Zones {
		if err := z.Cache.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := z.Buddy.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		live += z.Buddy.LiveAllocs()
	}
	if live != 0 {
		t.Fatalf("%d state blocks leak after all threads exited", live)
	}
}

// TestFiberStateSmaller checks the fiber footprint claim: a fiber's
// state block is strictly smaller than a thread's.
func TestFiberStateSmaller(t *testing.T) {
	eng, k := newKernel(t, 1, DefaultConfig())
	th := k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {})
	fb := k.Spawn(0, ClassFiber, ThreadOpts{}, func(tc *ThreadCtx) {})
	ts, ok := k.Mem.Zones[0].Buddy.SizeOf(th.StateAddr)
	if !ok {
		t.Fatal("thread state not live")
	}
	fs, ok := k.Mem.Zones[0].Buddy.SizeOf(fb.StateAddr)
	if !ok {
		t.Fatal("fiber state not live")
	}
	if fs >= ts {
		t.Fatalf("fiber state %d >= thread state %d", fs, ts)
	}
	eng.Run()
}

// TestTaskQueueState checks the task framework allocates its per-CPU
// control blocks through the NUMA allocator.
func TestTaskQueueState(t *testing.T) {
	eng, k := newKernel(t, 2, DefaultConfig())
	k.InitTasks()
	for cpu := 0; cpu < 2; cpu++ {
		if k.taskqs[cpu].stateAddr == 0 {
			t.Fatalf("cpu %d task queue got no state block", cpu)
		}
	}
	// 2 daemons + 2 queue blocks.
	if st := k.MemStats(); st.StateAllocs != 4 {
		t.Fatalf("state allocs = %d, want 4", st.StateAllocs)
	}
	_ = eng
}

package nautilus

import "repro/internal/mem"

// Simulated thread-state footprints: a full kernel thread carries a
// stack plus TCB; a fiber is lightweight by design (§III: "fibers ...
// have a much smaller memory footprint").
const (
	threadStateBytes = 16 << 10
	fiberStateBytes  = 4 << 10
	taskQueueBytes   = 8 << 10
)

// defaultZoneBytes sizes each per-socket NUMA zone when Config.ZoneBytes
// is left zero.
const defaultZoneBytes = 64 << 20

// MemStats aggregates the kernel's allocation-path accounting: the
// bookkeeping counters (allocation is instantaneous in simulated time —
// it models placement, not cost) plus the magazine front-end's totals.
type MemStats struct {
	StateAllocs      int64 // thread/task state blocks allocated
	StateAllocBytes  int64 // bytes of state allocated (block-rounded)
	StateAllocFailed int64 // allocations that failed (all zones full)
	Cache            mem.CPUCacheStats
	Zones            []mem.BuddyStats
}

// initMem builds the kernel's NUMA memory: one zone per socket (Nautilus
// selects a buddy allocator "based on the target zone"), each fronted by
// a per-CPU magazine cache so every CPU's allocation fast path is
// lock-free. Zone allocation is pure bookkeeping — it consumes no
// simulated cycles and its addresses feed no experiment output, so
// enabling it by default cannot perturb results.
func (k *Kernel) initMem() {
	zoneBytes := k.Cfg.ZoneBytes
	if zoneBytes == 0 || zoneBytes&(zoneBytes-1) != 0 {
		zoneBytes = defaultZoneBytes
	}
	numa, err := mem.NewNUMA(k.M.Topo().Sockets, zoneBytes, 6)
	if err != nil {
		panic("nautilus: " + err.Error())
	}
	if err := numa.AttachCaches(k.M.Topo().NumCPUs(), 0); err != nil {
		panic("nautilus: " + err.Error())
	}
	k.Mem = numa
}

// allocState allocates a state block for cpu from its socket's zone
// (bound threads keep "essential thread state ... in the most desirable
// zone"), falling back by distance under pressure. Returns 0 and counts
// a failure if every zone is full — the simulation carries on, threads
// just run stateless.
func (k *Kernel) allocState(cpu int, n uint64) (mem.Addr, uint64) {
	socket := k.M.CPUs[cpu].Socket
	a, err := k.Mem.AllocOn(cpu, socket, n)
	if err != nil {
		k.memStats.StateAllocFailed++
		return 0, 0
	}
	k.memStats.StateAllocs++
	k.memStats.StateAllocBytes += int64(k.Mem.Zones[0].Buddy.BlockSize(n))
	return a, n
}

// freeState releases a state block allocated by allocState.
func (k *Kernel) freeState(cpu int, a mem.Addr, n uint64) {
	if n == 0 {
		return
	}
	if err := k.Mem.FreeOn(cpu, a); err != nil {
		panic("nautilus: state free: " + err.Error())
	}
}

// MemStats snapshots the kernel's memory accounting. Callers must be
// quiesced relative to the simulation (CPUCache counters are per-CPU and
// unsynchronized), which is true between Engine runs.
func (k *Kernel) MemStats() MemStats {
	st := k.memStats
	for _, z := range k.Mem.Zones {
		st.Cache.Add(z.Cache.Stats())
		st.Zones = append(st.Zones, z.Cache.ZoneStats())
	}
	return st
}

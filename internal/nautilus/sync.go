package nautilus

// Synchronization primitives built on the kernel's fast events — the
// "streamlined kernel primitives such as synchronization and threading
// facilities" (§III) a hybrid runtime links against.

// Mutex is a sleeping kernel mutex with a FIFO wait queue.
type Mutex struct {
	k      *Kernel
	locked bool
	owner  *Thread
	ev     *Event

	Acquisitions int64
	Contended    int64
}

// NewMutex creates an unlocked mutex.
func NewMutex(k *Kernel) *Mutex {
	return &Mutex{k: k, ev: NewEvent(k)}
}

// Lock acquires m, blocking the calling thread if contended.
func (tc *ThreadCtx) Lock(m *Mutex) {
	// The uncontended fast path is a compare-and-swap.
	tc.Compute(12)
	for m.locked {
		m.Contended++
		tc.Wait(m.ev)
	}
	m.locked = true
	m.owner = tc.T
	m.Acquisitions++
}

// Unlock releases m and wakes one waiter. Unlocking a mutex the caller
// does not hold panics — it is a kernel bug.
func (tc *ThreadCtx) Unlock(m *Mutex) {
	if !m.locked || m.owner != tc.T {
		panic("nautilus: unlock of mutex not held by caller")
	}
	m.locked = false
	m.owner = nil
	tc.Signal(m.ev)
}

// Barrier is a reusable sense-counting barrier for n threads.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	ev      *Event

	Rounds int64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n <= 0 {
		panic("nautilus: barrier needs at least one participant")
	}
	return &Barrier{k: k, n: n, ev: NewEvent(k)}
}

// Arrive blocks until all n participants have arrived; the last arrival
// releases everyone.
func (tc *ThreadCtx) Arrive(b *Barrier) {
	tc.Compute(8) // arrival bookkeeping
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.Rounds++
		tc.Broadcast(b.ev)
		return
	}
	tc.Wait(b.ev)
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	k     *Kernel
	count int
	ev    *Event
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *Kernel, initial int) *Semaphore {
	return &Semaphore{k: k, count: initial, ev: NewEvent(k)}
}

// Down decrements the semaphore, blocking while it is zero.
func (tc *ThreadCtx) Down(s *Semaphore) {
	tc.Compute(10)
	for s.count == 0 {
		tc.Wait(s.ev)
	}
	s.count--
}

// Up increments the semaphore and wakes one waiter.
func (tc *ThreadCtx) Up(s *Semaphore) {
	s.count++
	tc.Signal(s.ev)
}

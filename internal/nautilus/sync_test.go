package nautilus

import "testing"

func TestMutexMutualExclusion(t *testing.T) {
	eng, k := newKernel(t, 4, Config{Timing: TimingHWTimer, QuantumCycles: 3_000})
	k.StartTimers()
	m := NewMutex(k)
	inside := 0
	maxInside := 0
	for i := 0; i < 8; i++ {
		cpu := i % 4
		k.Spawn(cpu, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			for j := 0; j < 5; j++ {
				tc.Lock(m)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				tc.Compute(2_000) // critical section spans preemptions
				inside--
				tc.Unlock(m)
				tc.Compute(500)
			}
		})
	}
	eng.RunUntil(100_000_000)
	if maxInside != 1 {
		t.Fatalf("max threads in critical section = %d", maxInside)
	}
	if m.Acquisitions != 40 {
		t.Fatalf("acquisitions = %d, want 40", m.Acquisitions)
	}
	if m.Contended == 0 {
		t.Fatal("expected contention with 8 threads on 4 CPUs")
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	m := NewMutex(k)
	panicked := false
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		tc.Unlock(m)
	})
	eng.RunUntil(1_000_000)
	if !panicked {
		t.Fatal("unlock without lock did not panic")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, k := newKernel(t, 4, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	const n = 4
	b := NewBarrier(k, n)
	phase := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(i, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			for round := 0; round < 3; round++ {
				// Unequal work before the barrier.
				tc.Compute(int64(1000 * (i + 1)))
				tc.Arrive(b)
				phase[i]++
				// All participants must be in the same round here.
				for j := 0; j < n; j++ {
					if phase[j] < phase[i]-1 {
						t.Errorf("thread %d raced ahead: %v", i, phase)
					}
				}
			}
		})
	}
	eng.RunUntil(10_000_000)
	for i := 0; i < n; i++ {
		if phase[i] != 3 {
			t.Fatalf("thread %d completed %d rounds", i, phase[i])
		}
	}
	if b.Rounds != 3 {
		t.Fatalf("barrier rounds = %d", b.Rounds)
	}
}

func TestBarrierReusable(t *testing.T) {
	eng, k := newKernel(t, 2, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	b := NewBarrier(k, 2)
	count := 0
	for i := 0; i < 2; i++ {
		k.Spawn(i, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			for r := 0; r < 10; r++ {
				tc.Arrive(b)
			}
			count++
		})
	}
	eng.RunUntil(10_000_000)
	if count != 2 {
		t.Fatalf("threads finished = %d (barrier deadlock?)", count)
	}
}

func TestBarrierBadCountPanics(t *testing.T) {
	_, k := newKernel(t, 1, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(k, 0)
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	eng, k := newKernel(t, 4, Config{Timing: TimingHWTimer, QuantumCycles: 2_000})
	k.StartTimers()
	s := NewSemaphore(k, 2)
	inside, maxInside := 0, 0
	done := 0
	for i := 0; i < 6; i++ {
		k.Spawn(i%4, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			tc.Down(s)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			tc.Compute(5_000)
			inside--
			tc.Up(s)
			done++
		})
	}
	eng.RunUntil(100_000_000)
	if done != 6 {
		t.Fatalf("done = %d", done)
	}
	if maxInside > 2 {
		t.Fatalf("semaphore admitted %d, limit 2", maxInside)
	}
	if maxInside < 2 {
		t.Fatalf("semaphore never reached its limit (%d)", maxInside)
	}
}

func TestSemaphoreProducerConsumer(t *testing.T) {
	eng, k := newKernel(t, 2, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	items := NewSemaphore(k, 0)
	var queue []int
	consumed := 0
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		for i := 0; i < 10; i++ {
			tc.Compute(300)
			queue = append(queue, i)
			tc.Up(items)
		}
	})
	k.Spawn(1, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		for i := 0; i < 10; i++ {
			tc.Down(items)
			if len(queue) == 0 {
				t.Error("consumer woke with empty queue")
				return
			}
			queue = queue[1:]
			consumed++
		}
	})
	eng.RunUntil(10_000_000)
	if consumed != 10 {
		t.Fatalf("consumed = %d", consumed)
	}
}

package nautilus

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestTaskDaemonRunsQueuedTasks(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	k.InitTasks()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.QueueTask(0, &Task{Cycles: 500, Fn: func() { order = append(order, i) }})
	}
	eng.RunUntil(1_000_000)
	if len(order) != 5 {
		t.Fatalf("ran %d tasks, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tasks out of order: %v", order)
		}
	}
	st := k.TaskQueueStats(0)
	if st.RanDaemon != 5 || st.RanIRQ != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WorkCycles != 5*500 {
		t.Fatalf("work = %d", st.WorkCycles)
	}
}

func TestTaskQueuePerCPU(t *testing.T) {
	eng, k := newKernel(t, 2, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	k.InitTasks()
	ran := make(map[int]int)
	k.QueueTask(0, &Task{Cycles: 100, Fn: func() { ran[0]++ }})
	k.QueueTask(1, &Task{Cycles: 100, Fn: func() { ran[1]++ }})
	k.QueueTask(1, &Task{Cycles: 100, Fn: func() { ran[1]++ }})
	eng.RunUntil(500_000)
	if ran[0] != 1 || ran[1] != 2 {
		t.Fatalf("ran = %v", ran)
	}
}

func TestSmallTaskRunsInInterruptContext(t *testing.T) {
	// The CCK trick: a small task queued by an interrupt handler runs
	// inline, paying zero scheduling cost.
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	k.InitTasks()
	cpu := k.M.CPU(0)
	var ranAt sim.Time
	cpu.SetHandler(machine.VecDevice, func(ctx *machine.IntrContext) {
		k.QueueTaskFromIRQ(ctx, 0, &Task{Cycles: 200, Fn: func() { ranAt = eng.Now() }}, 1000)
	})
	eng.At(5000, func() { cpu.Raise(machine.VecDevice) })
	eng.RunUntil(100_000)
	if ranAt == 0 {
		t.Fatal("task never ran")
	}
	// Ran during the handler: immediately at handler entry (Fn runs at
	// handler-time; cost charged to the interrupt).
	if ranAt.Sub(5000) > k.Model.HW.InterruptDispatch+10 {
		t.Fatalf("task ran at %d, not in interrupt context", ranAt)
	}
	st := k.TaskQueueStats(0)
	if st.RanIRQ != 1 || st.RanDaemon != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLargeTaskDefersToDaemon(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	k.InitTasks()
	cpu := k.M.CPU(0)
	ran := false
	cpu.SetHandler(machine.VecDevice, func(ctx *machine.IntrContext) {
		k.QueueTaskFromIRQ(ctx, 0, &Task{Cycles: 50_000, Fn: func() { ran = true }}, 1000)
	})
	eng.At(5000, func() { cpu.Raise(machine.VecDevice) })
	eng.RunUntil(1_000_000)
	if !ran {
		t.Fatal("deferred task never ran")
	}
	st := k.TaskQueueStats(0)
	if st.RanDaemon != 1 || st.RanIRQ != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunUntilTasksDrain(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	k.InitTasks()
	done := 0
	for i := 0; i < 20; i++ {
		k.QueueTask(0, &Task{Cycles: 1000, Fn: func() { done++ }})
	}
	if !k.RunUntilTasksDrain(eng.Now() + 10_000_000) {
		t.Fatal("queues did not drain")
	}
	if k.PendingTasks(0) != 0 {
		t.Fatal("pending tasks remain")
	}
	// Drain means dequeued; let the last task finish executing.
	eng.RunUntil(eng.Now() + 100_000)
	if done != 20 {
		t.Fatalf("done = %d", done)
	}
}

func TestTasksInterleaveWithThreads(t *testing.T) {
	// The task daemon is an ordinary kernel thread: other threads still
	// make progress while tasks drain.
	eng, k := newKernel(t, 1, Config{Timing: TimingHWTimer, QuantumCycles: 5_000})
	k.InitTasks()
	k.StartTimers()
	appDone := false
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(100_000)
		appDone = true
	})
	taskDone := 0
	for i := 0; i < 10; i++ {
		k.QueueTask(0, &Task{Cycles: 10_000, Fn: func() { taskDone++ }})
	}
	eng.RunUntil(5_000_000)
	if !appDone {
		t.Fatal("app thread starved by tasks")
	}
	if taskDone != 10 {
		t.Fatalf("tasks done = %d", taskDone)
	}
}

package nautilus

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

type threadState int

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

// ThreadOpts carry the Fig. 4 parameter space: real-time scheduling class
// and floating-point state usage.
type ThreadOpts struct {
	RT bool
	FP bool
}

type actionKind int

const (
	actCompute actionKind = iota
	actYield
	actWait
	actSignal
	actBroadcast
	actSleep
	actExit
)

type action struct {
	kind   actionKind
	cycles int64
	ev     *Event
}

// Thread is a simulated kernel thread or fiber. Its body runs as a real
// Go function, driven in lock-step with the simulation.
type Thread struct {
	ID    int
	CPU   int
	Class Class
	Opts  ThreadOpts

	// StateAddr is the thread's simulated state block (stack + TCB),
	// placed in its CPU's local NUMA zone at spawn; 0 if allocation
	// failed under memory pressure.
	StateAddr mem.Addr
	stateSize uint64

	body  func(*ThreadCtx)
	state threadState

	// Coroutine machinery.
	started bool
	req     chan action
	res     chan struct{}
	kill    chan struct{}
	killed  bool

	// paused holds interrupted compute work (hardware-timer preemption).
	paused *machine.PausedRun
	// computeLeft holds remaining compute cycles when a compiler-timed
	// fiber was switched out at a check.
	computeLeft int64
	// qAcc accumulates quantum usage for compiler timing.
	qAcc int64

	// doneEv fires when the thread exits.
	doneEv *Event

	// ComputeCycles counts useful work completed.
	ComputeCycles int64
	// Yields counts voluntary yields.
	Yields int64
}

// Done reports whether the thread has exited.
func (t *Thread) Done() bool { return t.state == stateDone }

// errKilled aborts a thread body during Kernel.Shutdown.
type errKilled struct{}

func (t *Thread) killOnce() {
	if !t.killed {
		t.killed = true
		close(t.kill)
	}
}

// ThreadCtx is the API a thread body uses to interact with the kernel.
// All methods must be called from the thread's own body function.
type ThreadCtx struct {
	T *Thread
	K *Kernel
}

func (tc *ThreadCtx) do(a action) {
	select {
	case tc.T.req <- a:
	case <-tc.T.kill:
		panic(errKilled{})
	}
	select {
	case <-tc.T.res:
	case <-tc.T.kill:
		panic(errKilled{})
	}
}

// Compute consumes cycles of CPU work. Under hardware timing it may be
// preempted by the timer; under compiler timing it is chunked into
// injected checks.
func (tc *ThreadCtx) Compute(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	tc.do(action{kind: actCompute, cycles: cycles})
}

// Yield voluntarily gives up the CPU to the next ready thread.
func (tc *ThreadCtx) Yield() {
	tc.do(action{kind: actYield})
}

// Wait blocks until ev is signaled.
func (tc *ThreadCtx) Wait(ev *Event) {
	tc.do(action{kind: actWait, ev: ev})
}

// Signal wakes one waiter of ev.
func (tc *ThreadCtx) Signal(ev *Event) {
	tc.do(action{kind: actSignal, ev: ev})
}

// Broadcast wakes all waiters of ev.
func (tc *ThreadCtx) Broadcast(ev *Event) {
	tc.do(action{kind: actBroadcast, ev: ev})
}

// Sleep blocks for the given number of cycles of wall-clock (simulated)
// time without consuming CPU.
func (tc *ThreadCtx) Sleep(cycles int64) {
	tc.do(action{kind: actSleep, cycles: cycles})
}

// Now returns the current simulated time.
func (tc *ThreadCtx) Now() sim.Time { return tc.K.M.Eng.Now() }

// proceed gives the CPU to t: first entry starts the body goroutine;
// re-entry resumes interrupted or chunk-parked compute, or unblocks the
// body and pumps its next action.
func (t *Thread) proceed(cs *cpuSched) {
	if !t.started {
		t.started = true
		tc := &ThreadCtx{T: t, K: cs.k}
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(errKilled); ok {
						return
					}
					panic(r)
				}
			}()
			t.body(tc)
			// Body finished: issue exit.
			select {
			case t.req <- action{kind: actExit}:
			case <-t.kill:
			}
		}()
		t.pump(cs)
		return
	}
	if t.paused != nil {
		p := t.paused
		t.paused = nil
		cs.cpu.Resume(p)
		return
	}
	if t.computeLeft > 0 {
		left := t.computeLeft
		t.computeLeft = 0
		t.computeChunked(cs, left)
		return
	}
	// Blocked/yielded: resume the body and take its next action.
	t.res <- struct{}{}
	t.pump(cs)
}

// pump takes the thread's next action and executes it. Called only from
// engine context while t owns the CPU.
func (t *Thread) pump(cs *cpuSched) {
	var a action
	select {
	case a = <-t.req:
	case <-t.kill:
		t.finish(cs)
		return
	}
	k := cs.k
	switch a.kind {
	case actCompute:
		if k.Cfg.Timing == TimingCompiler {
			t.computeChunked(cs, a.cycles)
			return
		}
		done := func() {
			t.ComputeCycles += a.cycles
			t.res <- struct{}{}
			t.pump(cs)
		}
		cs.cpu.Run(a.cycles, done)
	case actYield:
		t.Yields++
		if len(cs.runq) == 0 {
			// No one to switch to: continue immediately.
			t.res <- struct{}{}
			t.pump(cs)
			return
		}
		t.state = stateReady
		cs.enqueue(t)
		next := cs.runq[0]
		cs.runq = cs.runq[1:]
		cs.switchTo(next, t)
	case actWait:
		if a.ev.latch && a.ev.set {
			// Latch already set: pass through without blocking.
			t.res <- struct{}{}
			t.pump(cs)
			return
		}
		t.state = stateBlocked
		a.ev.addWaiter(t)
		t.blockAndPickNext(cs)
	case actSignal:
		cost := a.ev.wake(1)
		cs.cpu.Run(cost, func() {
			t.res <- struct{}{}
			t.pump(cs)
		})
	case actBroadcast:
		cost := a.ev.wake(-1)
		cs.cpu.Run(cost, func() {
			t.res <- struct{}{}
			t.pump(cs)
		})
	case actSleep:
		t.state = stateBlocked
		k.M.Eng.After(sim.Time(a.cycles), func() {
			t.state = stateReady
			cs.enqueue(t)
			cs.maybeDispatch()
		})
		t.blockAndPickNext(cs)
	case actExit:
		t.finish(cs)
	default:
		panic(fmt.Sprintf("nautilus: unknown action %d", a.kind))
	}
}

// computeChunked runs compute work under compiler timing: the injected
// checks execute every CheckIntervalCycles; when the quantum is used up
// and another thread is ready, the check fires a voluntary switch.
func (t *Thread) computeChunked(cs *cpuSched, remaining int64) {
	k := cs.k
	if remaining <= 0 {
		t.res <- struct{}{}
		t.pump(cs)
		return
	}
	chunk := k.Cfg.CheckIntervalCycles
	if chunk <= 0 {
		chunk = 2000
	}
	if chunk > remaining {
		chunk = remaining
	}
	checkCost := k.Model.Nautilus.TimingFrameworkCheck
	cs.cpu.Run(chunk+checkCost, func() {
		t.ComputeCycles += chunk
		t.qAcc += chunk + checkCost
		k.ChecksRun++
		k.CheckCycleSum += checkCost
		left := remaining - chunk
		if t.qAcc >= k.Cfg.QuantumCycles && len(cs.runq) > 0 {
			// The check fires: the timer framework performs a switch.
			k.CheckFires++
			t.qAcc = 0
			t.state = stateReady
			t.computeLeft = left
			cs.enqueue(t)
			next := cs.runq[0]
			cs.runq = cs.runq[1:]
			cs.switchTo(next, t)
			return
		}
		t.computeChunked(cs, left)
	})
}

// blockAndPickNext parks the current thread (already queued elsewhere)
// and dispatches the next ready thread, or idles the CPU.
func (t *Thread) blockAndPickNext(cs *cpuSched) {
	cs.current = nil
	if len(cs.runq) == 0 {
		cs.idle = true
		return
	}
	next := cs.runq[0]
	cs.runq = cs.runq[1:]
	cs.switchTo(next, t)
}

// finish marks the thread done, wakes joiners, and schedules the next.
func (t *Thread) finish(cs *cpuSched) {
	t.state = stateDone
	if t.stateSize != 0 {
		cs.k.freeState(t.CPU, t.StateAddr, t.stateSize)
		t.stateSize = 0
	}
	if t.doneEv != nil {
		wakeCost := t.doneEv.wake(-1)
		// Exit-path wake cost is charged to the scheduler switch below
		// by simply adding it to the next dispatch via a tiny run.
		if wakeCost > 0 && !cs.cpu.Running() {
			cs.current = nil
			cs.cpu.Run(wakeCost, func() { t.afterFinish(cs) })
			return
		}
	}
	t.afterFinish(cs)
}

func (t *Thread) afterFinish(cs *cpuSched) {
	cs.current = nil
	if len(cs.runq) == 0 {
		cs.idle = true
		return
	}
	next := cs.runq[0]
	cs.runq = cs.runq[1:]
	cs.switchTo(next, t)
}

// DoneEvent returns an event that is broadcast when the thread exits,
// creating it on first use. Join by waiting on it.
func (t *Thread) DoneEvent(k *Kernel) *Event {
	if t.doneEv == nil {
		t.doneEv = NewLatch(k)
	}
	return t.doneEv
}

package nautilus

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

func newKernel(t *testing.T, cpus int, cfg Config) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 7)
	k := New(m, cfg)
	t.Cleanup(k.Shutdown)
	return eng, k
}

func TestSingleThreadRuns(t *testing.T) {
	eng, k := newKernel(t, 1, DefaultConfig())
	var trace []int64
	th := k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(1000)
		trace = append(trace, int64(tc.Now()))
		tc.Compute(2000)
		trace = append(trace, int64(tc.Now()))
	})
	eng.Run()
	if !th.Done() {
		t.Fatal("thread did not finish")
	}
	if len(trace) != 2 || trace[1]-trace[0] != 2000 {
		t.Fatalf("trace = %v", trace)
	}
	if th.ComputeCycles != 3000 {
		t.Fatalf("compute cycles = %d", th.ComputeCycles)
	}
}

func TestCooperativeYieldAlternates(t *testing.T) {
	cfg := Config{Timing: TimingCooperative, QuantumCycles: 1 << 30}
	eng, k := newKernel(t, 1, cfg)
	var order []int
	mk := func(id int) func(*ThreadCtx) {
		return func(tc *ThreadCtx) {
			for i := 0; i < 3; i++ {
				tc.Compute(100)
				order = append(order, id)
				tc.Yield()
			}
		}
	}
	k.Spawn(0, ClassFiber, ThreadOpts{}, mk(1))
	k.Spawn(0, ClassFiber, ThreadOpts{}, mk(2))
	eng.Run()
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestYieldWithEmptyQueueContinues(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	done := false
	k.Spawn(0, ClassFiber, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(10)
		tc.Yield() // alone on the CPU
		tc.Compute(10)
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("solo yield deadlocked")
	}
}

func TestHWTimerPreemption(t *testing.T) {
	cfg := Config{Timing: TimingHWTimer, QuantumCycles: 10_000}
	eng, k := newKernel(t, 1, cfg)
	k.StartTimers()
	var finished []int
	mk := func(id int) func(*ThreadCtx) {
		return func(tc *ThreadCtx) {
			tc.Compute(50_000)
			finished = append(finished, id)
		}
	}
	k.Spawn(0, ClassThread, ThreadOpts{}, mk(1))
	k.Spawn(0, ClassThread, ThreadOpts{}, mk(2))
	eng.RunUntil(1_000_000)
	if len(finished) != 2 {
		t.Fatalf("finished = %v", finished)
	}
	// With a 10k quantum and 50k of work each, preemption must have
	// interleaved them: at least a few switches beyond the two initial
	// dispatches.
	if k.Switches < 6 {
		t.Fatalf("switches = %d; preemption did not interleave", k.Switches)
	}
	// Both threads' work was preserved exactly.
	for _, th := range k.Threads() {
		if th.ComputeCycles != 50_000 {
			t.Fatalf("thread %d compute = %d", th.ID, th.ComputeCycles)
		}
	}
}

func TestCompilerTimedSwitching(t *testing.T) {
	cfg := Config{Timing: TimingCompiler, QuantumCycles: 10_000, CheckIntervalCycles: 1000}
	eng, k := newKernel(t, 1, cfg)
	var finished []int
	mk := func(id int) func(*ThreadCtx) {
		return func(tc *ThreadCtx) {
			tc.Compute(50_000)
			finished = append(finished, id)
		}
	}
	k.Spawn(0, ClassFiber, ThreadOpts{}, mk(1))
	k.Spawn(0, ClassFiber, ThreadOpts{}, mk(2))
	eng.RunUntil(10_000_000)
	if len(finished) != 2 {
		t.Fatalf("finished = %v", finished)
	}
	if k.ChecksRun == 0 {
		t.Fatal("no timing checks ran")
	}
	if k.CheckFires == 0 {
		t.Fatal("no timing check ever fired a switch")
	}
	// No hardware interrupts were needed at all — that is the point of
	// compiler-based timing.
	if k.M.CPU(0).Stats.Interrupts != 0 {
		t.Fatalf("interrupts = %d; compiler timing must avoid them", k.M.CPU(0).Stats.Interrupts)
	}
	for _, th := range k.Threads() {
		if th.ComputeCycles != 50_000 {
			t.Fatalf("thread %d compute = %d, want 50000", th.ID, th.ComputeCycles)
		}
	}
}

func TestEventWaitSignal(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	ev := NewEvent(k)
	var log []string
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		log = append(log, "wait")
		tc.Wait(ev)
		log = append(log, "woken")
	})
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(5000)
		log = append(log, "signal")
		tc.Signal(ev)
	})
	eng.Run()
	if len(log) != 3 || log[0] != "wait" || log[1] != "signal" || log[2] != "woken" {
		t.Fatalf("log = %v", log)
	}
	if ev.Wakeups != 1 {
		t.Fatalf("wakeups = %d", ev.Wakeups)
	}
}

func TestBroadcastWakesAll(t *testing.T) {
	eng, k := newKernel(t, 2, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	ev := NewEvent(k)
	woken := 0
	for i := 0; i < 4; i++ {
		cpu := i % 2
		k.Spawn(cpu, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
			tc.Wait(ev)
			woken++
		})
	}
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(20_000) // let everyone block first
		tc.Broadcast(ev)
	})
	eng.Run()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestLatchJoin(t *testing.T) {
	eng, k := newKernel(t, 2, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	worker := k.Spawn(1, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(500)
	})
	done := worker.DoneEvent(k)
	joined := false
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(100_000) // worker exits long before this finishes
		tc.Wait(done)       // latch: must pass immediately
		joined = true
	})
	eng.Run()
	if !joined {
		t.Fatal("join on already-exited thread blocked forever")
	}
}

func TestSleepWakes(t *testing.T) {
	eng, k := newKernel(t, 1, DefaultConfig())
	var wake sim.Time
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Sleep(100_000)
		wake = tc.Now()
	})
	eng.Run()
	if wake < 100_000 {
		t.Fatalf("woke at %d", wake)
	}
}

func TestSleepDoesNotBlockCPU(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	var otherDone sim.Time
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Sleep(1_000_000)
	})
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(10_000)
		otherDone = tc.Now()
	})
	eng.Run()
	if otherDone == 0 || otherDone > 200_000 {
		t.Fatalf("second thread done at %d; sleeper hogged the CPU", otherDone)
	}
}

func TestRTThreadRunsFirst(t *testing.T) {
	eng, k := newKernel(t, 1, Config{Timing: TimingCooperative, QuantumCycles: 1 << 30})
	var order []string
	// Occupy the CPU briefly so both spawns queue up before dispatch.
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		tc.Compute(10_000)
	})
	k.Spawn(0, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {
		order = append(order, "normal")
	})
	k.Spawn(0, ClassThread, ThreadOpts{RT: true}, func(tc *ThreadCtx) {
		order = append(order, "rt")
	})
	eng.Run()
	if len(order) != 2 || order[0] != "rt" {
		t.Fatalf("order = %v; RT thread must run before non-RT", order)
	}
}

func TestSwitchCostFamily(t *testing.T) {
	// Fig. 4 structure: for every class, FP costs more than no-FP;
	// fibers cost less than threads; compiler-timed fibers cost less
	// than hardware-timer threads; RT adds overhead.
	eng := sim.NewEngine()
	m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: 1}, 7)

	cost := func(timing TimingMode, cls Class, opts ThreadOpts) int64 {
		k := New(m, Config{Timing: timing, QuantumCycles: 1 << 20})
		return k.switchCost(&Thread{Class: cls, Opts: opts}, nil)
	}

	threadFP := cost(TimingHWTimer, ClassThread, ThreadOpts{FP: true})
	threadNoFP := cost(TimingHWTimer, ClassThread, ThreadOpts{})
	fiberCoop := cost(TimingCooperative, ClassFiber, ThreadOpts{})
	fiberCT := cost(TimingCompiler, ClassFiber, ThreadOpts{})
	fiberCTFP := cost(TimingCompiler, ClassFiber, ThreadOpts{FP: true})
	threadRT := cost(TimingHWTimer, ClassThread, ThreadOpts{RT: true, FP: true})

	if threadFP <= threadNoFP {
		t.Fatal("FP state must add cost")
	}
	if fiberCT >= threadNoFP {
		t.Fatal("compiler-timed fiber must beat hardware-timer thread")
	}
	if fiberCoop > fiberCT {
		t.Fatal("cooperative fiber must not cost more than compiler-timed")
	}
	if threadRT <= threadFP {
		t.Fatal("RT class must add overhead")
	}
	if fiberCTFP <= fiberCT {
		t.Fatal("FP fiber must cost more than no-FP fiber")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		eng := sim.NewEngine()
		m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: 2}, 7)
		k := New(m, Config{Timing: TimingHWTimer, QuantumCycles: 5000})
		defer k.Shutdown()
		k.StartTimers()
		for i := 0; i < 6; i++ {
			cpu := i % 2
			k.Spawn(cpu, ClassThread, ThreadOpts{FP: i%2 == 0}, func(tc *ThreadCtx) {
				for j := 0; j < 10; j++ {
					tc.Compute(3000)
					tc.Yield()
				}
			})
		}
		eng.RunUntil(10_000_000)
		return int64(eng.Now()), k.Switches
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, s1, t2, s2)
	}
}

func TestSpawnBadCPUPanics(t *testing.T) {
	_, k := newKernel(t, 1, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn(3, ClassThread, ThreadOpts{}, func(tc *ThreadCtx) {})
}

func TestManyThreadsManyCPUs(t *testing.T) {
	eng, k := newKernel(t, 4, Config{Timing: TimingHWTimer, QuantumCycles: 20_000})
	k.StartTimers()
	finished := 0
	for i := 0; i < 32; i++ {
		k.Spawn(i%4, ClassThread, ThreadOpts{FP: i%3 == 0}, func(tc *ThreadCtx) {
			tc.Compute(100_000)
			finished++
		})
	}
	eng.RunUntil(100_000_000)
	if finished != 32 {
		t.Fatalf("finished = %d / 32", finished)
	}
	// Work conservation: total useful cycles must be exact.
	var total int64
	for _, th := range k.Threads() {
		total += th.ComputeCycles
	}
	if total != 32*100_000 {
		t.Fatalf("total compute = %d", total)
	}
}

package nautilus

import (
	"fmt"

	"repro/internal/sim"
)

// Event is the Nautilus fast event/wait-queue primitive ("primitives
// such as thread management and event signaling are orders of magnitude
// faster", §III). Two flavors:
//
//   - condition events (NewEvent): Wait always blocks until a later
//     Signal/Broadcast;
//   - latches (NewLatch): once set, all current and future waiters pass
//     immediately (used for thread joins).
type Event struct {
	k       *Kernel
	waiters []*Thread
	latch   bool
	set     bool
	// waking is non-zero while a wake sweep is dequeuing waiters — a
	// latch broadcast sets the latch first and then readies waiters one
	// by one, so mid-sweep the "set but waiters parked" state is
	// transient and legal. CheckNoLostWakeup only judges boundaries.
	waking int

	Signals int64
	Wakeups int64
}

// NewEvent creates a condition-style event.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// NewLatch creates a latched event.
func NewLatch(k *Kernel) *Event { return &Event{k: k, latch: true} }

// Set reports whether a latch has been set.
func (e *Event) Set() bool { return e.set }

func (e *Event) addWaiter(t *Thread) {
	e.waiters = append(e.waiters, t)
}

// wake readies up to n waiters (n < 0 wakes all) and returns the cycle
// cost of the wake path. For latches it also sets the latch.
func (e *Event) wake(n int) int64 {
	e.Signals++
	e.waking++
	defer func() { e.waking-- }()
	if e.latch {
		e.set = true
	}
	var cost int64
	woken := 0
	for len(e.waiters) > 0 && (n < 0 || woken < n) {
		t := e.waiters[0]
		e.waiters = e.waiters[1:]
		woken++
		e.Wakeups++
		cost += e.k.Model.Nautilus.EventWakeup
		cs := e.k.cpus[t.CPU]
		t.state = stateReady
		cs.enqueue(t)
		// Remote CPU may be idle: let it pick the thread up. The chaos
		// hook may defer (never drop) the dispatch.
		if cs.idle {
			c := cs
			var delay int64
			if e.k.WakeDelay != nil {
				delay = e.k.WakeDelay()
			}
			e.k.M.Eng.After(sim.Time(delay), func() { c.maybeDispatch() })
		}
	}
	return cost
}

// CheckNoLostWakeup verifies the event's liveness invariant: once a
// latch is set, no waiter may remain parked on it — every thread that
// enqueued before the Set saw its wake, and later Waits pass through
// without parking. The chaos harness runs this at every injection
// firing; a violation means a wake was dropped somewhere between
// signal and dispatch.
func (e *Event) CheckNoLostWakeup() error {
	if e.waking == 0 && e.latch && e.set && len(e.waiters) > 0 {
		return fmt.Errorf("nautilus: latch set but %d waiter(s) still parked", len(e.waiters))
	}
	return nil
}

// SignalFromIRQ wakes one waiter from interrupt context, charging the
// wake cost to the running handler. This is the out-of-band event path
// the heartbeat mechanism uses.
func (e *Event) SignalFromIRQ(ctx interface{ AddCost(int64) }) {
	ctx.AddCost(e.wake(1))
}

// BroadcastFromIRQ wakes all waiters from interrupt context.
func (e *Event) BroadcastFromIRQ(ctx interface{ AddCost(int64) }) {
	ctx.AddCost(e.wake(-1))
}

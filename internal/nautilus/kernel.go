// Package nautilus implements the simulated Nautilus kernel framework
// (§III): per-CPU run queues with bound threads, lightweight kernel
// threads and fibers, hard real-time and round-robin scheduling classes,
// fast events, and SoftIRQ-style tasks.
//
// Threads are written as ordinary Go functions against a ThreadCtx; the
// kernel drives them in strict lock-step with the discrete-event engine
// (exactly one simulated entity runs at a time), so execution is fully
// deterministic. Context-switch and primitive costs come from
// internal/model, calibrated to Fig. 4 of the paper.
package nautilus

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/sim"
)

// Class selects the thread implementation.
type Class int

const (
	// ClassThread is a full kernel thread: preemptible via the hardware
	// timer, switched in interrupt context.
	ClassThread Class = iota
	// ClassFiber is a lightweight context switched only at yield points
	// — explicit (cooperative) or compiler-injected (compiler-timed).
	ClassFiber
)

// TimingMode selects how preemption points are generated.
type TimingMode int

const (
	// TimingCooperative: no preemption; switches happen only at
	// explicit Yield calls.
	TimingCooperative TimingMode = iota
	// TimingHWTimer: a per-CPU LAPIC timer interrupt drives preemption
	// (classic design; pays interrupt dispatch per switch).
	TimingHWTimer
	// TimingCompiler: compiler-injected timing checks drive preemption
	// (§IV-C); the timer framework is entered by a call, not an
	// interrupt.
	TimingCompiler
)

// Config configures a kernel instance.
type Config struct {
	// Timing selects the preemption mechanism for the whole kernel.
	Timing TimingMode
	// QuantumCycles is the scheduling quantum.
	QuantumCycles int64
	// CheckIntervalCycles is the compiler-timing check spacing (only
	// used with TimingCompiler); this is the granularity the injected
	// checks achieve.
	CheckIntervalCycles int64
	// ZoneBytes sizes each per-socket NUMA memory zone (power of two;
	// 0 selects a 64 MiB default).
	ZoneBytes uint64
}

// DefaultConfig returns a hardware-timer kernel with a 1 ms quantum.
func DefaultConfig() Config {
	return Config{
		Timing:              TimingHWTimer,
		QuantumCycles:       1_000_000,
		CheckIntervalCycles: 2_000,
	}
}

// Kernel is one simulated Nautilus instance on a machine.
type Kernel struct {
	M     *machine.Machine
	Model model.Model
	Cfg   Config

	// Mem is the kernel's NUMA memory: one buddy-backed zone per socket,
	// each fronted by a per-CPU magazine cache (see mem.go). Thread and
	// task-framework state blocks are placed through it.
	Mem *mem.NUMA

	// WakeDelay, when non-nil, returns extra cycles by which to defer
	// the idle-CPU dispatch that follows an event wake (fault-injection
	// hook; see internal/chaos). The dispatch is only ever delayed,
	// never skipped, so the hook cannot introduce a lost wakeup — it
	// exists to widen the window in which one would be observable.
	WakeDelay func() int64

	cpus     []*cpuSched
	nextTID  int
	threads  []*Thread
	taskqs   []*taskQueue
	memStats MemStats

	// Stats.
	Switches      int64
	SwitchCycles  int64
	Spawns        int64
	EventSignals  int64
	CheckFires    int64 // compiler-timing checks that triggered a switch
	ChecksRun     int64 // compiler-timing checks executed
	CheckCycleSum int64 // cycles spent running checks
}

// cpuSched is the per-CPU scheduler state.
type cpuSched struct {
	k       *Kernel
	cpu     *machine.CPU
	runq    []*Thread // FIFO ready queue (RT threads sorted first)
	current *Thread
	idle    bool
	// switching marks a context switch in flight; preemption is
	// deferred for its duration (the switch path runs with interrupts
	// effectively disabled, as in a real kernel).
	switching bool
}

// New creates a kernel over machine m.
func New(m *machine.Machine, cfg Config) *Kernel {
	k := &Kernel{M: m, Model: m.Model, Cfg: cfg}
	k.initMem()
	for _, cpu := range m.CPUs {
		cs := &cpuSched{k: k, cpu: cpu, idle: true}
		k.cpus = append(k.cpus, cs)
		cpu.SetReschedHook(cs.reschedHook)
		if cfg.Timing == TimingHWTimer {
			c := cpu
			cpu.SetHandler(machine.VecTimer, func(ctx *machine.IntrContext) {
				// Timer tick: charge the handler's bookkeeping and ask
				// for a scheduling pass on the way out.
				ctx.AddCost(k.Model.Nautilus.TimingFrameworkFire)
				ctx.RequestResched()
				_ = c
			})
		}
	}
	return k
}

// StartTimers arms the per-CPU preemption timers (hardware-timer mode
// only; compiler timing needs no timer at all — that is the point).
func (k *Kernel) StartTimers() {
	if k.Cfg.Timing != TimingHWTimer {
		return
	}
	for _, cs := range k.cpus {
		cs.cpu.APIC().Periodic(k.Cfg.QuantumCycles, machine.VecTimer)
	}
}

// Spawn creates a thread bound to cpu, ready to run. Nautilus threads
// are bound: "for threads that are bound to specific CPUs, essential
// thread state is guaranteed to always be in the most desirable zone".
func (k *Kernel) Spawn(cpu int, cls Class, opts ThreadOpts, body func(*ThreadCtx)) *Thread {
	if cpu < 0 || cpu >= len(k.cpus) {
		panic(fmt.Sprintf("nautilus: bad CPU %d", cpu))
	}
	t := &Thread{
		ID:    k.nextTID,
		CPU:   cpu,
		Class: cls,
		Opts:  opts,
		body:  body,
		state: stateReady,
		req:   make(chan action),
		res:   make(chan struct{}),
		kill:  make(chan struct{}),
	}
	// Place the thread's state block (stack + TCB; smaller for fibers) in
	// the CPU's local zone — bound threads keep their essential state in
	// the most desirable zone.
	stateBytes := uint64(threadStateBytes)
	if cls == ClassFiber {
		stateBytes = fiberStateBytes
	}
	t.StateAddr, t.stateSize = k.allocState(cpu, stateBytes)
	k.nextTID++
	k.threads = append(k.threads, t)
	k.Spawns++
	cs := k.cpus[cpu]
	cs.enqueue(t)
	// Creation itself costs cycles on the spawning path; charged to the
	// engine clock lazily when the CPU dispatches.
	k.M.Eng.After(sim.Time(k.Model.Nautilus.ThreadCreate), func() {
		cs.maybeDispatch()
	})
	return t
}

// Shutdown kills all threads, releasing their goroutines. The simulation
// cannot be continued afterwards.
func (k *Kernel) Shutdown() {
	for _, t := range k.threads {
		t.killOnce()
	}
}

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// CPUSched returns scheduling stats access for tests.
func (k *Kernel) queueLen(cpu int) int { return len(k.cpus[cpu].runq) }

// enqueue adds t to the ready queue, RT class before non-RT (simple
// fixed-priority approximation of the EDF class).
func (cs *cpuSched) enqueue(t *Thread) {
	t.state = stateReady
	if t.Opts.RT {
		// Insert after any existing RT threads, before non-RT.
		i := 0
		for i < len(cs.runq) && cs.runq[i].Opts.RT {
			i++
		}
		cs.runq = append(cs.runq, nil)
		copy(cs.runq[i+1:], cs.runq[i:])
		cs.runq[i] = t
		return
	}
	cs.runq = append(cs.runq, t)
}

// maybeDispatch starts the next thread if the CPU is idle.
func (cs *cpuSched) maybeDispatch() {
	if !cs.idle || cs.cpu.Running() {
		return
	}
	if len(cs.runq) == 0 {
		return
	}
	next := cs.runq[0]
	cs.runq = cs.runq[1:]
	cs.idle = false
	cs.switchTo(next, nil)
}

// switchTo makes next the current thread, paying the context-switch cost
// appropriate to the switch kind, then continues next's execution.
func (cs *cpuSched) switchTo(next *Thread, from *Thread) {
	k := cs.k
	cost := k.switchCost(next, from)
	k.Switches++
	k.SwitchCycles += cost
	cs.current = next
	next.state = stateRunning
	cs.switching = true
	cs.cpu.Run(cost, func() {
		cs.switching = false
		next.proceed(cs)
	})
}

// switchCost composes the cycle cost of switching to next (Fig. 4's
// parameter space). The FP state cost is paid if either side uses FP.
func (k *Kernel) switchCost(next, from *Thread) int64 {
	nk := k.Model.Nautilus
	hw := k.Model.HW
	var c int64
	fp := next.Opts.FP || (from != nil && from.Opts.FP)
	switch next.Class {
	case ClassFiber:
		c = nk.FiberYield + hw.GPRSaveRestore
		if k.Cfg.Timing == TimingCompiler {
			c += nk.TimingFrameworkFire
		}
	default: // ClassThread
		c = nk.ThreadSwitch + hw.GPRSaveRestore
		if k.Cfg.Timing == TimingHWTimer {
			// Thread switches ride the timer interrupt: entry+exit are
			// accounted by the machine's dispatch path when the switch
			// is interrupt-driven; for voluntary switches we charge
			// them here to keep Fig. 4's "threads pay interrupt costs"
			// structure.
			c += hw.InterruptDispatch + hw.InterruptReturn
		}
	}
	if fp {
		c += hw.FPStateSave + hw.FPStateRestore
	}
	if next.Opts.RT || (from != nil && from.Opts.RT) {
		c += nk.RTOverhead
	}
	return c
}

// reschedHook is installed as the machine's post-interrupt scheduling
// takeover: the timer handler (or any handler that requests rescheduling)
// lands here with the preempted work.
func (cs *cpuSched) reschedHook(cpu *machine.CPU, paused *machine.PausedRun) {
	if cs.switching {
		// Preemption arrived mid-context-switch: finish the switch
		// first (interrupts are logically disabled on the switch path).
		cpu.Resume(paused)
		return
	}
	cur := cs.current
	if cur == nil || paused == nil {
		// Idle CPU tick, or spurious: resume whatever was paused.
		cpu.Resume(paused)
		return
	}
	if len(cs.runq) == 0 {
		// Nothing else to run; continue current without a switch.
		cpu.Resume(paused)
		return
	}
	// Preempt: park current (with its remaining work), pick next.
	cur.state = stateReady
	cur.paused = paused
	cs.enqueue(cur)
	next := cs.runq[0]
	cs.runq = cs.runq[1:]
	cs.switchTo(next, cur)
}

package core

import (
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// pipelineResult adapts pipeline.Compare for the table layer.
type pipelineResult struct {
	idtMean, pipeMean float64
	idtP99, pipeP99   float64
	idtGran, pipeGran int64
}

func pipelineCompare(s *Stack) pipelineResult {
	cfg := pipeline.DefaultConfig()
	cfg.Seed = s.Seed
	r := pipeline.Compare(s.Model, cfg)
	idtG, pipeG := pipeline.MinGranularity(s.Model, 0.05)
	return pipelineResult{
		idtMean: r.IDT.Mean, pipeMean: r.Pipeline.Mean,
		idtP99: r.IDT.P99, pipeP99: r.Pipeline.P99,
		idtGran: idtG, pipeGran: pipeG,
	}
}

// Blending regenerates the §V-C proof of concept: a device whose
// normally interrupt-driven logic is replaced by compiler-injected
// constant-time poll checks distributed through the running code. The
// device "appears to behave as if it were interrupt-driven, but no
// interrupts ever occur".
//
// The polled variant is built for real: the poll-blending compiler pass
// injects OpPoll checks into a compute kernel, and the interpreter's
// poll hook services a synthetic packet arrival schedule. The
// interrupt-driven baseline pays the dispatch path per packet.
func (s *Stack) Blending() *Table {
	t := &Table{
		ID:     "blending",
		Title:  "Blended device driver: interrupts vs compiler-injected polling",
		Header: []string{"design", "mean svc latency (cyc)", "p99 (cyc)", "interrupts", "overhead"},
	}
	const arrivalEvery = 20_000 // cycles between packet arrivals
	const handlerCost = 300     // device service work per packet

	// --- Polled variant: real pass + real execution. ---
	k := workloads.CARATSuite()[0] // stream-triad: loop-dense host code
	m := k.Build()
	// ChunkLoops amortizes the poll to once per ~1000 cycles of work
	// (the paper's "constant-time poll check" injected "throughout the
	// kernel using compiler-based timing").
	pollPass := &passes.TimingInject{TargetCycles: 1_000, Op: ir.OpPoll, ChunkLoops: true}
	if err := passes.RunAll(m, pollPass); err != nil {
		panic(err)
	}
	ip, err := interp.New(m)
	if err != nil {
		panic(err)
	}
	var latencies []float64
	var nextArrival int64 = arrivalEvery
	served := 0
	var pollOverhead int64
	ip.Hooks.Poll = func() int64 {
		now := ip.Stats.Cycles
		cost := int64(4) // constant-time poll check
		for nextArrival <= now {
			latencies = append(latencies, float64(now-nextArrival))
			served++
			cost += handlerCost
			nextArrival += arrivalEvery
		}
		pollOverhead += 4
		return cost
	}
	if _, err := ip.Call(k.Entry); err != nil {
		panic(err)
	}
	totalCycles := ip.Stats.Cycles
	pollSummary := stats.Summarize(latencies)
	pollOvhFrac := float64(pollOverhead) / float64(totalCycles)
	t.AddRow("blended polling", f1(pollSummary.Mean), f1(pollSummary.P99), "0", pct(pollOvhFrac))

	// --- Interrupt-driven baseline over the same duration. ---
	nPackets := served
	if nPackets == 0 {
		nPackets = 1
	}
	hw := s.Model.HW
	intrLat := float64(hw.InterruptDispatch)
	intrOvhFrac := float64(int64(nPackets)*(hw.InterruptDispatch+hw.InterruptReturn)) / float64(totalCycles)
	t.AddRow("interrupt-driven", f1(intrLat), f1(intrLat), i64(int64(nPackets)), pct(intrOvhFrac))

	t.AddRow("packets served", i64(int64(served)), "", "", "")
	t.AddNote("polling latency is bounded by the injected check spacing (~%d cycles target); the polled design takes zero interrupts", 1_000)
	t.AddNote("with pipeline interrupts (§V-D) the interrupt-driven latency would drop to branch cost — the two mitigations compose")
	return t
}

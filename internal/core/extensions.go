package core

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/farmem"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/nautilus"
	"repro/internal/sim"
)

// FarMemory regenerates the §V-C far-memory candidate application:
// page-granularity transparent swapping vs compiler-blended
// object-granularity placement, across object sizes.
func (s *Stack) FarMemory() *Table {
	t := &Table{
		ID:     "farmem",
		Title:  "Transparent far memory: page swapping vs object blending",
		Header: []string{"object size", "pages lat (cyc)", "objects lat (cyc)", "speedup", "pages traffic (MB)", "objects traffic (MB)"},
	}
	cfg := farmem.DefaultConfig()
	cfg.LocalCapacity = 256 << 10
	const objects = 1024
	const accesses = 60_000
	for _, objSize := range []uint64{128, 256, 1024, 4096} {
		pg := farmem.NewPageSwapper(cfg)
		runFarWorkload(pg, objects, objSize, accesses, s.Seed)
		ob := farmem.NewObjectBlender(cfg)
		runFarWorkload(ob, objects, objSize, accesses, s.Seed)
		pgl, obl := pg.Stats().MeanLatency(), ob.Stats().MeanLatency()
		pgb := float64(pg.Stats().BytesIn+pg.Stats().BytesOut) / (1 << 20)
		obb := float64(ob.Stats().BytesIn+ob.Stats().BytesOut) / (1 << 20)
		t.AddRow(fmt.Sprintf("%dB", objSize), f1(pgl), f1(obl), f2(pgl/obl)+"x",
			f2(pgb), f2(obb))
	}
	t.AddNote("one object per page, 80/20 skew, 256 KiB local tier; blending wins exactly where the paper predicts — small objects, where pages amplify transfers")
	return t
}

// runFarWorkload issues the standard skewed access pattern.
func runFarWorkload(m farmem.Manager, count int, objSize uint64, accesses int, seed uint64) {
	rng := sim.NewRNG(seed)
	bases := make([]mem.Addr, count)
	for i := 0; i < count; i++ {
		bases[i] = mem.Addr(uint64(i) * 4096)
		m.Register(bases[i], objSize)
	}
	hot := count / 10
	for i := 0; i < accesses; i++ {
		var idx int
		if rng.Float64() < 0.8 {
			idx = rng.Intn(hot)
		} else {
			idx = rng.Intn(count)
		}
		m.Access(bases[idx] + mem.Addr(rng.Int63n(int64(objSize))))
	}
}

// Consistency regenerates §V-B's consistency motivation: fence stall
// cycles under x86-TSO full drains vs selective (semantics-driven)
// ordering, as the fraction of unrelated in-flight stores grows.
func (s *Stack) Consistency() *Table {
	t := &Table{
		ID:     "consistency",
		Title:  "Fence stalls: x86-TSO full drain vs selective ordering",
		Header: []string{"data stores", "unrelated stores", "full stall (cyc)", "selective stall (cyc)", "reduction"},
	}
	const rounds = 1000
	for _, mix := range []struct{ data, unrelated int }{
		{8, 0}, {8, 8}, {8, 24}, {4, 44},
	} {
		full, sel := coherence.FenceComparison(rounds, mix.data, mix.unrelated)
		red := 1 - float64(sel)/float64(full)
		t.AddRow(i64(int64(mix.data)), i64(int64(mix.unrelated)),
			i64(full), i64(sel), pct(red))
	}
	t.AddNote("\"a fence orders writes that produce data before setting the done flag, but it also orders all other writes the thread issued\" — selectivity removes exactly that waste")
	return t
}

// RISCVStack returns an OpenPiton-class RV64 stack (§V-F).
func RISCVStack(cpus int) *Stack {
	s := NewStack(cpus)
	s.Model = model.RISCV()
	return s
}

// CrossISA regenerates the §V-F exploration: the same interweaving
// mechanisms on x64 vs open RISC-V hardware. Lean trap paths shrink the
// interrupt-cost problem (and therefore the pipeline-interrupt win),
// while the kernel-primitive advantages carry over.
func (s *Stack) CrossISA() *Table {
	t := &Table{
		ID:     "riscv",
		Title:  "Interweaving mechanisms across ISAs (x64 vs RISC-V)",
		Header: []string{"metric", "x64", "riscv", "note"},
	}
	x64 := NewStack(s.Topo.NumCPUs())
	rv := RISCVStack(s.Topo.NumCPUs())

	t.AddRow("interrupt dispatch (cyc)",
		i64(x64.Model.HW.InterruptDispatch), i64(rv.Model.HW.InterruptDispatch),
		"RISC-V trap entry is direct (mtvec)")
	t.AddRow("dispatch / predicted branch",
		f1(float64(x64.Model.HW.InterruptDispatch)/float64(x64.Model.HW.PredictedBranch))+"x",
		f1(float64(rv.Model.HW.InterruptDispatch)/float64(rv.Model.HW.PredictedBranch))+"x",
		"pipeline-interrupt headroom per ISA")

	// Heartbeat at 20µs on both.
	rate := func(st *Stack) float64 {
		cfg := DefaultFig3Config()
		cfg.Items = 1_500_000
		period := st.Model.MicrosToCycles(20)
		rt := st.heartbeatRun(cfg, 0, period)
		rates := rt.AchievedRates()
		var sum float64
		for _, r := range rates {
			sum += r
		}
		if len(rates) == 0 {
			return 0
		}
		achieved := sum / float64(len(rates))
		return achieved / (1e6 / float64(period))
	}
	t.AddRow("heartbeat 20µs achieved/target", f2(rate(x64)), f2(rate(rv)),
		"Nautilus substrate holds the rate on both")

	// Fiber switch cost on both (compiler-timed, no FP).
	sw := func(st *Stack) int64 {
		return st.measureSwitch(fig4Bar{
			timing: nautilus.TimingCompiler,
			class:  nautilus.ClassFiber,
		})
	}
	t.AddRow("comptime fiber switch (cyc)", i64(sw(x64)), i64(sw(rv)),
		"lean GPR file helps RISC-V")
	t.AddNote("§V-F: \"Nautilus partially boots on RISC-V\" — here the full mechanism suite runs on the open-hardware model")
	return t
}

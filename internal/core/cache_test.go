package core

import (
	"testing"

	"repro/internal/cache"
)

// cacheDrivers is the driver set the cache tests exercise: every
// runCells/MapRNG call site, at the same reduced axes the determinism
// test uses.
var cacheDrivers = []struct {
	name  string
	stack func() *Stack
	gen   func(s *Stack) *Table
}{
	{"fig3", func() *Stack { return NewStack(16) }, func(s *Stack) *Table {
		cfg := DefaultFig3Config()
		cfg.Items = 400_000
		return s.Fig3(cfg)
	}},
	{"carat", func() *Stack { return NewStack(16) }, (*Stack).CARAT},
	{"fig7-ablation", ServerStack, (*Stack).AblationSharingClasses},
	{"virtine", func() *Stack { return NewStack(16) }, (*Stack).Virtines},
	{"memstats", func() *Stack { return NewStack(16) }, (*Stack).MemStats},
	{"fig6", func() *Stack { return KNLStack(1) }, func(s *Stack) *Table {
		return s.Fig6(Fig6Config{CPUCounts: []int{2, 8}, Kernels: DefaultFig6Config().Kernels, Steps: 2})
	}},
}

// TestCachedRunsByteIdentical is the acceptance-criteria test for the
// cell tier: for every cached driver, output is byte-identical between
// the uncached run, a cold cached run, a warm cached run at a different
// pool width, and a warm run through a fresh Cache over the same spill
// directory (a simulated process restart).
func TestCachedRunsByteIdentical(t *testing.T) {
	t.Parallel()
	for _, d := range cacheDrivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			run := func(par int, c *cache.Cache) string {
				s := d.stack()
				s.Parallel = par
				s.Cache = c
				return d.gen(s).JSON()
			}
			want := run(1, nil)
			c1 := cache.New(cache.Config{Dir: dir})
			if got := run(2, c1); got != want {
				t.Fatalf("cold cached run differs from uncached:\n%s\n---\n%s", got, want)
			}
			st := c1.Stats()
			if st.Computes == 0 {
				t.Fatal("cold run computed nothing through the cache")
			}
			if got := run(8, c1); got != want {
				t.Fatal("warm cached run differs (pool width 8)")
			}
			if warm := c1.Stats(); warm.Hits <= st.Hits {
				t.Fatalf("warm run hit nothing: %+v -> %+v", st, warm)
			}
			// Process restart: fresh memory, same disk.
			c2 := cache.New(cache.Config{Dir: dir})
			if got := run(1, c2); got != want {
				t.Fatal("spill-restart run differs")
			}
			if st := c2.Stats(); st.SpillHits == 0 {
				t.Fatalf("restart run never read the spill tier: %+v", st)
			}
		})
	}
}

// TestCachedTablesRoundTrip exercises the driver-level tier the CLI
// uses: whole table sets round-trip byte-identically through memory and
// disk, with the Table digest verified on the way back in.
func TestCachedTablesRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	gen := func() []*Table {
		s := NewStack(16)
		s.Parallel = 2
		cfg := DefaultFig3Config()
		cfg.Items = 400_000
		return []*Table{s.Fig3Overheads(cfg), s.MemStats()}
	}
	render := func(ts []*Table) string {
		var out string
		for _, tb := range ts {
			out += tb.JSON()
		}
		return out
	}
	key := NewStack(16).KeyEnc("tables-roundtrip-test").Sum()
	want := render(gen())
	c1 := cache.New(cache.Config{Dir: dir})
	if got := render(CachedTables(c1, key, gen)); got != want {
		t.Fatal("cold CachedTables differs from direct generation")
	}
	ran := false
	got := render(CachedTables(c1, key, func() []*Table { ran = true; return gen() }))
	if ran {
		t.Fatal("warm CachedTables re-ran the generator")
	}
	if got != want {
		t.Fatal("warm CachedTables differs")
	}
	c2 := cache.New(cache.Config{Dir: dir})
	if got := render(CachedTables(c2, key, func() []*Table { t.Fatal("restart re-ran"); return nil })); got != want {
		t.Fatal("spill-restart CachedTables differs")
	}
	// A nil cache or zero key is transparent.
	if got := render(CachedTables(nil, key, gen)); got != want {
		t.Fatal("nil-cache CachedTables differs")
	}
	if got := render(CachedTables(c1, cache.Key{}, gen)); got != want {
		t.Fatal("zero-key CachedTables differs")
	}
}

// TestChaosKeysNeverAlias pins the fault-injection isolation rule:
// chaos-seeded stacks derive different keys than clean ones (and than
// each other), at both the driver and cell tier, so a fault-injected
// result can never be served to a clean run.
func TestChaosKeysNeverAlias(t *testing.T) {
	t.Parallel()
	mk := func(chaosSeed uint64) cache.Key {
		s := NewStack(16)
		s.ChaosSeed = chaosSeed
		e := s.KeyEnc("fig3")
		DefaultFig3Config().enc(e)
		return e.Sum()
	}
	clean, chaos7, chaos8 := mk(0), mk(7), mk(8)
	if clean == chaos7 || clean == chaos8 || chaos7 == chaos8 {
		t.Fatalf("chaos plans alias: clean=%s chaos7=%s chaos8=%s", clean, chaos7, chaos8)
	}

	// Run-level check: a clean run warms the cache; an armed run over
	// the same shared cache must not hit any of its entries.
	c := cache.New(cache.Config{})
	run := func(chaosSeed uint64) {
		s := NewStack(16)
		s.ChaosSeed = chaosSeed
		s.Cache = c
		s.MemStats() // memstats cells don't build machines: chaos-armed runs complete
	}
	run(0)
	st := c.Stats()
	run(9)
	st2 := c.Stats()
	if st2.Hits != st.Hits {
		t.Fatalf("chaos-armed run hit clean entries: %+v -> %+v", st, st2)
	}
	if st2.Computes <= st.Computes {
		t.Fatal("chaos-armed run computed nothing (keys aliased)")
	}
}

// TestTableDigest pins the digest's contract: equality across pool
// widths and cache states, sensitivity to every content field.
func TestTableDigest(t *testing.T) {
	t.Parallel()
	gen := func(par int, c *cache.Cache) *Table {
		s := NewStack(16)
		s.Parallel = par
		s.Cache = c
		cfg := DefaultFig3Config()
		cfg.Items = 400_000
		return s.Fig3Overheads(cfg)
	}
	ref := gen(1, nil).Digest()
	if gen(8, nil).Digest() != ref {
		t.Fatal("digest varies with pool width")
	}
	c := cache.New(cache.Config{})
	if gen(2, c).Digest() != ref || gen(2, c).Digest() != ref {
		t.Fatal("digest varies with cache state")
	}

	base := &Table{ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	d := base.Digest()
	if d != (&Table{ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}).Digest() {
		t.Fatal("digest not deterministic")
	}
	mutations := map[string]*Table{
		"id":     {ID: "y", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}},
		"header": {ID: "x", Header: []string{"a", "c"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}},
		"row":    {ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "3"}}, Notes: []string{"n"}},
		"note":   {ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"m"}},
		// Cell boundaries are part of the form: ["ab"] vs ["a","b"].
		"split": {ID: "x", Header: []string{"ab"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}},
	}
	for name, m := range mutations {
		if m.Digest() == d {
			t.Errorf("%s change did not change the digest", name)
		}
	}
}

// TestVersionSaltStable pins that the salt is memoized and stable
// within a build — two calls agree, and KeyEnc embeds it.
func TestVersionSaltStable(t *testing.T) {
	t.Parallel()
	if VersionSalt() != VersionSalt() {
		t.Fatal("salt unstable across calls")
	}
	a := NewStack(16).KeyEnc("x").Sum()
	b := NewStack(16).KeyEnc("x").Sum()
	if a != b {
		t.Fatal("KeyEnc unstable for identical stacks")
	}
	if NewStack(16).KeyEnc("y").Sum() == a {
		t.Fatal("experiment id not in the key")
	}
	s := NewStack(32)
	if s.KeyEnc("x").Sum() == a {
		t.Fatal("topology not in the key")
	}
	s = NewStack(16)
	s.Seed = 43
	if s.KeyEnc("x").Sum() == a {
		t.Fatal("seed not in the key")
	}
	// Parallel and Shards are execution knobs, not result coordinates.
	s = NewStack(16)
	s.Parallel = 8
	s.Shards = 4
	if s.KeyEnc("x").Sum() != a {
		t.Fatal("pool width / engine sharding leaked into the key")
	}
}

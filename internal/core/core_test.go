package core

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell as a float, stripping units.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := tab.Rows[row][col]
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "µs")
	s = strings.TrimSuffix(s, " speedup")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func findRow(tab *Table, prefix string) int {
	for i, r := range tab.Rows {
		if strings.HasPrefix(r[0], prefix) {
			return i
		}
	}
	return -1
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 5)
	s := tab.String()
	for _, want := range []string{"demo", "a", "bb", "hello 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	t.Parallel()
	cfg := DefaultFig3Config()
	cfg.Items = 1_500_000
	tab := NewStack(16).Fig3(cfg)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows: (20µs nk, 20µs lx, 100µs nk, 100µs lx); column 4 is
	// achieved/target, column 5 is CV.
	nk20 := cell(t, tab, 0, 4)
	lx20 := cell(t, tab, 1, 4)
	nk100 := cell(t, tab, 2, 4)
	lx100cv := cell(t, tab, 3, 5)
	nk100cv := cell(t, tab, 2, 5)
	if nk20 < 0.97 || nk100 < 0.97 {
		t.Fatalf("nautilus must hit target: 20µs=%.2f 100µs=%.2f", nk20, nk100)
	}
	if lx20 > 0.7 {
		t.Fatalf("linux at 20µs achieved %.2f of target; must collapse", lx20)
	}
	if lx100cv < 2*nk100cv {
		t.Fatalf("linux CV %.2f must exceed nautilus CV %.2f", lx100cv, nk100cv)
	}
}

func TestFig3Overheads(t *testing.T) {
	t.Parallel()
	// Full workload length: overhead amortizes start-up/tail stealing.
	tab := NewStack(16).Fig3Overheads(DefaultFig3Config())
	nk := cell(t, tab, 0, 1)
	lx := cell(t, tab, 1, 1)
	if nk > 4.9 {
		t.Fatalf("nautilus overhead %.1f%% above the 4.9%% paper bound", nk)
	}
	if lx < 10 || lx > 30 {
		t.Fatalf("linux overhead %.1f%% outside the 13-22%% paper band (with slack)", lx)
	}
}

func TestFig4Shape(t *testing.T) {
	t.Parallel()
	tab := KNLStack(1).Fig4()
	lxFP := cell(t, tab, findRow(tab, "linux thread (non-RT, FP)"), 1)
	if lxFP < 4800 || lxFP > 5200 {
		t.Fatalf("linux FP = %.0f, want ≈5000", lxFP)
	}
	thFP := cell(t, tab, findRow(tab, "nautilus threads (non-RT, FP)"), 1)
	if r := lxFP / thFP; r < 1.7 || r > 2.4 {
		t.Fatalf("nautilus thread FP should be about half of linux: ratio %.2f", r)
	}
	ctNoFP := cell(t, tab, findRow(tab, "nautilus fibers-comptime (no FP)"), 1)
	if ctNoFP >= 600 {
		t.Fatalf("compiler-timed no-FP switch = %.0f, paper says < 600", ctNoFP)
	}
	// The figure's callouts compare compiler-timed fibers to the
	// system's own hardware-timer threads: 2.3x with FP state, 4x
	// without.
	ctFP := cell(t, tab, findRow(tab, "nautilus fibers-comptime (FP)"), 1)
	if r := thFP / ctFP; r < 1.9 || r > 2.8 {
		t.Fatalf("comptime FP ratio vs threads = %.2f, want ≈2.3", r)
	}
	thNoFP := cell(t, tab, findRow(tab, "nautilus threads (non-RT, no FP)"), 1)
	if r := thNoFP / ctNoFP; r < 3.0 || r > 5.5 {
		t.Fatalf("comptime no-FP vs thread no-FP ratio = %.2f, want ≈4", r)
	}
	rtFP := cell(t, tab, findRow(tab, "nautilus threads (RT, FP)"), 1)
	if rtFP <= thFP {
		t.Fatal("RT must cost more than non-RT")
	}
}

func TestFig4Granularity(t *testing.T) {
	t.Parallel()
	tab := KNLStack(1).GranularityLimit(0.5)
	lx := cell(t, tab, 0, 2)
	ct := cell(t, tab, 2, 2)
	if lx/ct < 4 {
		t.Fatalf("granularity improvement %.1fx, paper claims >4x", lx/ct)
	}
}

func TestFig6Shape(t *testing.T) {
	t.Parallel()
	cfg := Fig6Config{CPUCounts: []int{8, 32, 64}, Kernels: DefaultFig6Config().Kernels, Steps: 3}
	tab := KNLStack(1).Fig6(cfg)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		rtk := cell(t, tab, i, 3)
		pik := cell(t, tab, i, 4)
		if rtk <= 1.0 {
			t.Fatalf("row %d: RTK ratio %.2f must beat linux", i, rtk)
		}
		if d := rtk - pik; d < 0 || d > 0.2 {
			t.Fatalf("row %d: PIK (%.2f) must perform similarly to RTK (%.2f)", i, pik, rtk)
		}
	}
	// The geomean note must exist.
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "geomean") {
		t.Fatal("missing geomean note")
	}
}

func TestFig7Shape(t *testing.T) {
	t.Parallel()
	tab := ServerStack().Fig7()
	avg := findRow(tab, "average")
	if avg < 0 {
		t.Fatal("no average row")
	}
	sp := cell(t, tab, avg, 1)
	en := cell(t, tab, avg, 2)
	if sp < 1.25 || sp > 1.75 {
		t.Fatalf("average speedup %.2f, paper reports ≈1.46", sp)
	}
	if en < 35 || en > 70 {
		t.Fatalf("average energy reduction %.0f%%, paper reports ≈53%%", en)
	}
	// Every benchmark must individually benefit.
	for i := 0; i < avg; i++ {
		if cell(t, tab, i, 1) < 1.0 {
			t.Fatalf("benchmark %s slowed down", tab.Rows[i][0])
		}
	}
}

func TestFig7SweepGrowsWithScaleAndLatency(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("skipping 10s+ scale sweep in -short mode")
	}
	// The small-N axis only: the 256/1024 points in the default axis
	// take minutes and belong to the CLI sweep, not the test gate.
	tab := ServerStack().Fig7SweepCores([]int{8, 16, 24, 48})
	// Rows are (cores, latX) pairs in order; compare 8-core 1x vs
	// 48-core 4x.
	first := cell(t, tab, 0, 2)
	last := cell(t, tab, len(tab.Rows)-1, 2)
	if last <= first {
		t.Fatalf("benefit must grow with scale and disaggregation: %.2f -> %.2f", first, last)
	}
}

func TestFig7Ablation(t *testing.T) {
	t.Parallel()
	tab := ServerStack().AblationSharingClasses()
	all := cell(t, tab, 0, 1)
	if all <= 1.0 {
		t.Fatal("full deactivation must speed up histogram")
	}
	for i := 1; i < len(tab.Rows); i++ {
		only := cell(t, tab, i, 1)
		if only > all+0.01 {
			t.Fatalf("single-class %s (%.2f) cannot beat all-classes (%.2f)", tab.Rows[i][0], only, all)
		}
	}
}

func TestCARATGeomeanUnderSix(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).CARAT()
	g := findRow(tab, "geomean")
	naive := cell(t, tab, g, 2)
	hoisted := cell(t, tab, g, 3)
	elim := cell(t, tab, g, 4)
	opt := cell(t, tab, g, 5)
	if hoisted >= 6 {
		t.Fatalf("hoisted geomean overhead %.1f%%, paper bound is <6%%", hoisted)
	}
	if naive < 3*hoisted {
		t.Fatalf("naive overhead %.1f%% should dwarf hoisted %.1f%%", naive, hoisted)
	}
	if elim > hoisted {
		t.Fatalf("elim geomean overhead %.1f%% exceeds hoisted %.1f%%", elim, hoisted)
	}
	// The analysis-driven optimizer runs on the instrumented module and
	// must pay for the remaining guards with its own speedup: its
	// geomean overhead (still measured against the unoptimized base)
	// stays under the elim configuration's.
	if opt > elim {
		t.Fatalf("opt geomean overhead %.1f%% exceeds elim %.1f%%", opt, elim)
	}
	// Semantics verified on every kernel, guard elimination monotone,
	// and on at least one kernel the dataflow pass removes >=10%% of the
	// dynamic guards that hoisting left behind (ISSUE 2 acceptance bar).
	bigCut := false
	shrunk := 0
	for i := 0; i < g; i++ {
		if tab.Rows[i][10] != "yes" {
			t.Fatalf("kernel %s semantics broken", tab.Rows[i][0])
		}
		var before, after int
		if _, err := fmt.Sscanf(tab.Rows[i][9], "%d->%d", &before, &after); err != nil {
			t.Fatalf("kernel %s: bad frame regs cell %q", tab.Rows[i][0], tab.Rows[i][9])
		}
		if after < before {
			shrunk++
		}
		gh := cell(t, tab, i, 7)
		ge := cell(t, tab, i, 8)
		if ge > gh {
			t.Fatalf("kernel %s: elim ran more guards (%v) than hoisted (%v)", tab.Rows[i][0], ge, gh)
		}
		if gh > 0 && ge <= 0.9*gh {
			bigCut = true
		}
	}
	if !bigCut {
		t.Fatal("no kernel had >=10%% of its remaining dynamic guards eliminated")
	}
	// ISSUE 7 acceptance bar: copy coalescing shrinks the entry frame on
	// at least 5 of the 8 kernels.
	if shrunk < 5 {
		t.Fatalf("frames shrank on only %d kernels, want >= 5", shrunk)
	}
}

func TestCARATMobility(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).CARATMobility()
	integ := findRow(tab, "pointer integrity")
	if tab.Rows[integ][2] != "verified" {
		t.Fatal("pointer integrity broken after compaction")
	}
	before := cell(t, tab, findRow(tab, "largest free span"), 1)
	after := cell(t, tab, findRow(tab, "largest free span"), 2)
	if after <= before {
		t.Fatalf("compaction did not defragment: %v -> %v KiB", before, after)
	}
}

func TestPrimitives(t *testing.T) {
	t.Parallel()
	tab := NewStack(16).Primitives()
	for _, prim := range []string{"thread create", "event signal (mean)", "context switch (FP)"} {
		i := findRow(tab, prim)
		lx := cell(t, tab, i, 1)
		nk := cell(t, tab, i, 2)
		if nk >= lx {
			t.Fatalf("%s: nautilus (%.0f) not faster than linux (%.0f)", prim, nk, lx)
		}
	}
	// Tail latency: orders of magnitude.
	i := findRow(tab, "event signal (p99 loaded)")
	if ratio := cell(t, tab, i, 1) / cell(t, tab, i, 2); ratio < 10 {
		t.Fatalf("p99 signal ratio = %.0fx, want >= 10x", ratio)
	}
	// The heartbeat app gives a lower-bound speedup; the OpenMP app at
	// scale lands in the paper's 20-40% band.
	a := findRow(tab, "heartbeat app")
	if sp := cell(t, tab, a, 3); sp < 5 || sp > 45 {
		t.Fatalf("heartbeat app speedup %.0f%%", sp)
	}
	o := findRow(tab, "OpenMP app")
	if sp := cell(t, tab, o, 3); sp < 15 || sp > 45 {
		t.Fatalf("OpenMP app speedup %.0f%%, paper band is 20-40%%", sp)
	}
}

func TestVirtinesShape(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).Virtines()
	cold := cell(t, tab, findRow(tab, "cold"), 1)
	snap := cell(t, tab, findRow(tab, "snapshot"), 1)
	pooled := cell(t, tab, findRow(tab, "pooled"), 1)
	if !(pooled < snap && snap < cold) {
		t.Fatalf("path ordering wrong: cold=%.1f snap=%.1f pooled=%.1f", cold, snap, pooled)
	}
	if cold < 80 || cold > 130 {
		t.Fatalf("cold start %.1fµs, paper says ≈100µs", cold)
	}
	fork := cell(t, tab, findRow(tab, "baseline fork/exec"), 1)
	if cold >= fork {
		t.Fatal("virtine must beat fork/exec")
	}
	b16 := cell(t, tab, findRow(tab, "bespoke 16-bit"), 1)
	b64 := cell(t, tab, findRow(tab, "bespoke long"), 1)
	if b16 >= b64 {
		t.Fatal("bespoke 16-bit context must boot faster")
	}
	// All three invocations computed fib(10) = 55.
	for _, p := range []string{"cold", "snapshot", "pooled"} {
		if v := cell(t, tab, findRow(tab, p), 4); v != 55 {
			t.Fatalf("%s returned %v, want 55", p, v)
		}
	}
}

func TestPipelineShape(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).Pipeline()
	mean := findRow(tab, "mean latency")
	sp := cell(t, tab, mean, 3)
	if sp < 100 || sp > 1000 {
		t.Fatalf("mean improvement %.0fx outside paper's 100-1000x", sp)
	}
}

func TestBlendingShape(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).Blending()
	polled := findRow(tab, "blended polling")
	intr := findRow(tab, "interrupt-driven")
	if tab.Rows[polled][3] != "0" {
		t.Fatal("blended design must take zero interrupts")
	}
	if cell(t, tab, intr, 3) <= 0 {
		t.Fatal("baseline must take interrupts")
	}
	served := cell(t, tab, findRow(tab, "packets served"), 1)
	if served <= 0 {
		t.Fatal("no packets served")
	}
	// Polling latency bounded by the check spacing.
	if p99 := cell(t, tab, polled, 2); p99 > 4000 {
		t.Fatalf("polling p99 = %.0f, should be bounded by check spacing", p99)
	}
}

func TestStackBuilders(t *testing.T) {
	t.Parallel()
	if s := KNLStack(4); s.Model.FreqGHz != 1.3 || s.Topo.NumCPUs() != 4 {
		t.Fatal("KNL stack wrong")
	}
	if s := ServerStack(); s.Topo.NumCPUs() != 24 || s.Model.FreqGHz != 3.3 {
		t.Fatal("server stack wrong")
	}
	eng, m := NewStack(2).Build()
	if eng == nil || len(m.CPUs) != 2 {
		t.Fatal("build wrong")
	}
}

func TestEPCCTable(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).EPCC(8)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Empty parallel region: linux overhead must exceed rtk.
	lx := cell(t, tab, 0, 1)
	rtk := cell(t, tab, 0, 2)
	if rtk >= lx {
		t.Fatalf("rtk %.0f >= linux %.0f", rtk, lx)
	}
}

func TestFarMemoryShape(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("skipping multi-second far-memory sweep in -short mode")
	}
	tab := NewStack(1).FarMemory()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Small objects: blending must win big on latency and traffic.
	small := cell(t, tab, 0, 3)
	if small < 1.5 {
		t.Fatalf("128B speedup = %.2f, want > 1.5", small)
	}
	if cell(t, tab, 0, 5) >= cell(t, tab, 0, 4) {
		t.Fatal("blending traffic must be lower for small objects")
	}
	// Page-sized objects: roughly even.
	large := cell(t, tab, 3, 3)
	if large > small {
		t.Fatal("blending advantage must shrink as objects approach page size")
	}
}

func TestConsistencyShape(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).Consistency()
	// No unrelated stores: no reduction.
	if red := cell(t, tab, 0, 4); red != 0 {
		t.Fatalf("no-unrelated reduction = %v", red)
	}
	// Reduction grows with the unrelated fraction.
	prev := -1.0
	for i := 1; i < len(tab.Rows); i++ {
		red := cell(t, tab, i, 4)
		if red <= prev {
			t.Fatalf("reduction not monotone: row %d = %v", i, red)
		}
		prev = red
	}
	if prev < 70 {
		t.Fatalf("peak reduction = %v%%, want > 70%%", prev)
	}
}

func TestCrossISAShape(t *testing.T) {
	t.Parallel()
	tab := NewStack(16).CrossISA()
	// RISC-V dispatch is leaner.
	d := findRow(tab, "interrupt dispatch")
	if cell(t, tab, d, 2) >= cell(t, tab, d, 1) {
		t.Fatal("RISC-V trap entry should be cheaper")
	}
	// Both ISAs hold the heartbeat target.
	h := findRow(tab, "heartbeat 20µs")
	if cell(t, tab, h, 1) < 0.97 || cell(t, tab, h, 2) < 0.97 {
		t.Fatalf("heartbeat rates: %s", tab.Rows[h])
	}
	// Pipeline-interrupt headroom exists on both but is larger on x64.
	r := findRow(tab, "dispatch / predicted branch")
	if cell(t, tab, r, 1) <= cell(t, tab, r, 2) {
		t.Fatal("x64 should have more pipeline-interrupt headroom")
	}
}

func TestPagingShape(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).Paging()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		demand := cell(t, tab, i, 1)
		ident := cell(t, tab, i, 2)
		none := cell(t, tab, i, 3)
		if none != 0 {
			t.Fatalf("%s: CARAT regime overhead = %v, want 0", r[0], none)
		}
		if ident > demand {
			t.Fatalf("%s: identity paging (%v) worse than 4K demand (%v)", r[0], ident, demand)
		}
		if demand <= 0 {
			t.Fatalf("%s: demand paging shows no overhead", r[0])
		}
	}
}

func TestTableJSON(t *testing.T) {
	t.Parallel()
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	tab.AddNote("n")
	js := tab.JSON()
	for _, want := range []string{`"id": "x"`, `"demo"`, `"rows"`, `"n"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
}

func TestSchedulesTable(t *testing.T) {
	t.Parallel()
	tab := NewStack(1).Schedules(16)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Uniform: static <= dynamic for both runtimes.
	for i := 0; i < 2; i++ {
		if cell(t, tab, i, 2) > cell(t, tab, i, 3) {
			t.Fatalf("row %d: static should win on uniform", i)
		}
	}
	// Triangular: dynamic < static.
	for i := 2; i < 4; i++ {
		if cell(t, tab, i, 3) >= cell(t, tab, i, 2) {
			t.Fatalf("row %d: dynamic should win under imbalance", i)
		}
	}
}

func TestTaskGranularityShape(t *testing.T) {
	t.Parallel()
	tab := KNLStack(1).TaskGranularity(16)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At 100-cycle leaves, Linux overhead/work must exceed 1 and the
	// kernel paths must be strictly better in both columns.
	if cell(t, tab, 0, 3) <= 1 {
		t.Fatal("linux overhead should exceed work at 100-cycle tasks")
	}
	if cell(t, tab, 2, 2) >= cell(t, tab, 0, 2) {
		t.Fatal("CCK should finish fine-grain DAG sooner than linux")
	}
	// At 10k-cycle leaves, everyone's overhead fraction is small.
	for i := 6; i < 9; i++ {
		if cell(t, tab, i, 3) > 0.1 {
			t.Fatalf("row %d: coarse tasks show %.2f overhead", i, cell(t, tab, i, 3))
		}
	}
}

func TestFig3SweepScaleDecay(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("skipping 10s+ heartbeat scale sweep in -short mode")
	}
	tab := NewStack(16).Fig3SweepCounts(20, []int{8, 16, 32, 64, 128})
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Nautilus holds the target at every scale.
	for i := range tab.Rows {
		if cell(t, tab, i, 1) < 0.97 {
			t.Fatalf("row %d: nautilus %v below target", i, cell(t, tab, i, 1))
		}
	}
	// Linux achieved/target must decay once the pacer outruns the
	// timer floor (beyond ~32 CPUs).
	if cell(t, tab, 4, 2) >= cell(t, tab, 1, 2) {
		t.Fatalf("linux rate did not decay with scale: %v -> %v",
			cell(t, tab, 1, 2), cell(t, tab, 4, 2))
	}
}

// TestParallelDeterminism verifies the tentpole guarantee: for the same
// seed, the parallel runner produces byte-identical encoded tables at
// any worker count, because each cell's machine and RNG derive only from
// the seed and cell index (pre-split, canonical assembly order).
func TestParallelDeterminism(t *testing.T) {
	t.Parallel()
	drivers := []struct {
		name string
		gen  func(s *Stack) *Table
	}{
		{"fig3", func(s *Stack) *Table {
			cfg := DefaultFig3Config()
			cfg.Items = 400_000
			return s.Fig3(cfg)
		}},
		{"fig3-overheads", func(s *Stack) *Table {
			cfg := DefaultFig3Config()
			cfg.Items = 400_000
			return s.Fig3Overheads(cfg)
		}},
		{"carat", (*Stack).CARAT},
		{"fig7-ablation", (*Stack).AblationSharingClasses},
		{"virtine", (*Stack).Virtines},
		{"fig6", func(s *Stack) *Table {
			return s.Fig6(Fig6Config{CPUCounts: []int{2, 8}, Kernels: DefaultFig6Config().Kernels, Steps: 2})
		}},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			stack := func(par int) *Stack {
				var s *Stack
				switch d.name {
				case "fig7-ablation":
					s = ServerStack()
				case "fig6":
					s = KNLStack(1)
				default:
					s = NewStack(16)
				}
				s.Parallel = par
				return s
			}
			seq := d.gen(stack(1)).JSON()
			for _, par := range []int{2, 8} {
				if got := d.gen(stack(par)).JSON(); got != seq {
					t.Fatalf("parallel=%d output differs from sequential:\n%s\n---\n%s", par, got, seq)
				}
			}
		})
	}
}

package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/exp"
)

// This file is the runnable-job registry: the experiment dispatch that
// used to live inside the interweave CLI, exported so any front end —
// the CLI, the interweaved HTTP daemon, benchdiff — runs experiments
// through one door. A RunConfig is the complete serializable
// description of an invocation (what to run and every knob that shapes
// its output); a Runner carries the execution-side resources (pool
// width, engine sharding, result cache) that deliberately do NOT shape
// output. The split mirrors the cache-key rule from PR 9: RunConfig
// fields are result coordinates, Runner fields are execution knobs.

// ExperimentOrder is the canonical experiment order (`interweave all`).
var experimentOrder = []string{
	"nautilus", "fig3", "fig4", "carat", "fig6", "fig7",
	"virtine", "pipeline", "blending", "farmem", "consistency",
	"riscv", "paging", "tasks",
}

// ExperimentIDs returns the registered experiment IDs in canonical
// (`interweave all`) order.
func ExperimentIDs() []string {
	ids := make([]string, len(experimentOrder))
	copy(ids, experimentOrder)
	return ids
}

// ValidExperiment reports whether id names a registered experiment.
func ValidExperiment(id string) bool {
	for _, e := range experimentOrder {
		if e == id {
			return true
		}
	}
	return false
}

// MaxCPUs bounds RunConfig.CPUs: the sharded event engine is validated
// to 1024 simulated CPUs (PR 6), and nothing above that has an oracle.
const MaxCPUs = 1024

// MaxDomains bounds RunConfig.Domains (fig3 steal domains / engine
// shards; the 1024-CPU sweep point uses 32).
const MaxDomains = 256

// RunConfig is the complete, serializable description of one
// experiment invocation: experiment ID plus every knob that shapes its
// output. Its canonical Key is a complete content address for the
// result — two RunConfigs with equal Keys produce byte-identical
// tables — which is why the experiment service uses the Key as the job
// ID.
type RunConfig struct {
	// Experiment is the registered experiment ID (see ExperimentIDs).
	Experiment string
	// CPUs parameterizes the CPU-count experiments (nautilus, riscv,
	// tasks, fig6 -epcc). Defaults are applied by DefaultRunConfig, not
	// here: the zero value is invalid.
	CPUs int
	// Seed is the simulation seed every cell derives randomness from.
	Seed uint64
	// ChaosSeed, when nonzero, arms the deterministic fault-injection
	// harness; same seed, same faults, byte-identical output.
	ChaosSeed uint64
	// Chaos overrides the armed fault rates (nil = chaos.DefaultConfig
	// when ChaosSeed is nonzero). Setting it without a ChaosSeed is a
	// validation error: rates without a seed arm nothing.
	Chaos *chaos.Config
	// Domains is fig3's steal-domain count (0 = auto).
	Domains int
	// Optional sub-reports, mirroring the CLI flags of the same names.
	Overheads   bool // fig3: scheduling overheads
	Granularity bool // fig4: granularity floors
	Mobility    bool // carat: heap compaction demo
	MemStats    bool // carat: heap allocator statistics
	EPCC        bool // fig6: EPCC sync microbenchmarks
	Sweep       bool // fig3/fig7: scale sweeps
	Ablate      bool // fig7: per-class ablation
	// SmallAxes trims the sweep axes to the classic small-N points
	// (what `interweave all` does: the 256-1024 CPU points take minutes
	// and belong to explicit sweep invocations).
	SmallAxes bool
}

// DefaultRunConfig returns the CLI-default invocation of an
// experiment: 16 CPUs, seed 42, no chaos, no sub-reports.
func DefaultRunConfig(experiment string) RunConfig {
	return RunConfig{Experiment: experiment, CPUs: 16, Seed: 42}
}

// ConfigError is a RunConfig validation failure with a stable
// machine-readable code — the experiment service returns it verbatim
// in its JSON error bodies, so the codes are API surface: they may be
// added to but never renamed.
type ConfigError struct {
	Code string // e.g. "unknown_experiment"
	Msg  string
}

// Error renders the failure.
func (e *ConfigError) Error() string { return e.Msg }

// Validation codes.
const (
	CodeUnknownExperiment = "unknown_experiment"
	CodeCPUsOutOfRange    = "cpus_out_of_range"
	CodeDomainsOutOfRange = "domains_out_of_range"
	CodeBadChaosPlan      = "bad_chaos_plan"
)

// Validate checks cfg against the registry and the simulated
// machines' validated envelope. A nil error means Run will not reject
// the config (it can still fail by injected chaos fault).
func (cfg RunConfig) Validate() error {
	if !ValidExperiment(cfg.Experiment) {
		return &ConfigError{CodeUnknownExperiment,
			fmt.Sprintf("unknown experiment %q (see ExperimentIDs)", cfg.Experiment)}
	}
	if cfg.CPUs < 1 || cfg.CPUs > MaxCPUs {
		return &ConfigError{CodeCPUsOutOfRange,
			fmt.Sprintf("cpus %d out of range [1, %d]", cfg.CPUs, MaxCPUs)}
	}
	if cfg.Domains < 0 || cfg.Domains > MaxDomains {
		return &ConfigError{CodeDomainsOutOfRange,
			fmt.Sprintf("domains %d out of range [0, %d]", cfg.Domains, MaxDomains)}
	}
	if cfg.Chaos != nil {
		if cfg.ChaosSeed == 0 {
			return &ConfigError{CodeBadChaosPlan,
				"chaos rates given without a nonzero chaos seed; they would arm nothing"}
		}
		c := cfg.Chaos
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"alloc_fail_prob", c.AllocFailProb},
			{"ipi_drop_prob", c.IPIDropProb},
			{"ipi_delay_prob", c.IPIDelayProb},
			{"timer_jitter_prob", c.TimerJitterProb},
			{"wake_delay_prob", c.WakeDelayProb},
		} {
			if p.v < 0 || p.v > 1 {
				return &ConfigError{CodeBadChaosPlan,
					fmt.Sprintf("chaos %s %v outside [0, 1]", p.name, p.v)}
			}
		}
		for _, d := range []struct {
			name string
			v    int64
		}{
			{"ipi_delay_max", c.IPIDelayMax},
			{"timer_jitter_max", c.TimerJitterMax},
			{"wake_delay_max", c.WakeDelayMax},
			{"max_steps", c.MaxSteps},
		} {
			if d.v < 0 {
				return &ConfigError{CodeBadChaosPlan,
					fmt.Sprintf("chaos %s %d negative", d.name, d.v)}
			}
		}
	}
	return nil
}

// chaosConfig returns the fault rates cfg arms.
func (cfg RunConfig) chaosConfig() chaos.Config {
	if cfg.Chaos != nil {
		return *cfg.Chaos
	}
	return chaos.DefaultConfig()
}

// Key canonicalizes the whole invocation: experiment ID plus every
// knob that shapes its output, under the version salt (which already
// covers code-side inputs: cost tables, kernel modules, platform
// models). Pool width and engine sharding are excluded — output is
// byte-identical at every setting, the package's standing guarantee.
func (cfg RunConfig) Key() cache.Key {
	e := cache.NewEnc()
	e.U64("salt", VersionSalt())
	e.Str("experiment-tables", cfg.Experiment)
	e.Int("cpus", cfg.CPUs)
	e.U64("seed", cfg.Seed)
	e.U64("chaos-seed", cfg.ChaosSeed)
	if cfg.ChaosSeed != 0 {
		e.Str("chaos-config", fmt.Sprintf("%+v", cfg.chaosConfig()))
	}
	e.Int("domains", cfg.Domains)
	e.Bool("overheads", cfg.Overheads)
	e.Bool("granularity", cfg.Granularity)
	e.Bool("mobility", cfg.Mobility)
	e.Bool("memstats", cfg.MemStats)
	e.Bool("epcc", cfg.EPCC)
	e.Bool("sweep", cfg.Sweep)
	e.Bool("ablate", cfg.Ablate)
	e.Bool("small-axes", cfg.SmallAxes)
	return e.Sum()
}

// Runner executes RunConfigs against shared execution-side resources.
// The zero Runner is valid: default pool width, sequential engine,
// no cache, a fresh pool per driver call.
type Runner struct {
	// Parallel bounds concurrent experiment cells (0 = exp default).
	Parallel int
	// Shards selects the event engine (see Stack.Shards).
	Shards int
	// Cache, when non-nil, memoizes at both tiers: whole-driver table
	// sets under RunConfig.Key, and individual cells under KeyEnc cell
	// keys.
	Cache *cache.Cache
	// Pool, when non-nil, is the shared admission-control pool every
	// run's cells go through (see Stack.Pool). Nil builds a fresh pool
	// of width Parallel per driver call, the CLI's behavior.
	Pool *exp.Pool
}

// Run regenerates cfg's tables. observe, when non-nil, receives a
// CellEvent as each experiment cell completes (see Stack.Observe).
// The returned source is the tier that served the whole table set
// (computed, mem, disk, or coalesced behind a concurrent duplicate).
//
// Unlike the drivers (which panic on cell failure), Run returns the
// two expected failure classes as errors: an injected chaos fault
// (classify with chaos.AsFault) and cancellation of ctx (classify with
// errors.Is context.Canceled / DeadlineExceeded). Anything else still
// panics — those are bugs, not outcomes.
func (r *Runner) Run(ctx context.Context, cfg RunConfig, observe func(CellEvent)) (tables []*Table, src cache.Source, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		e, ok := rec.(error)
		if !ok {
			panic(rec)
		}
		if _, isFault := chaos.AsFault(e); isFault {
			err = e
			return
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			err = e
			return
		}
		panic(rec)
	}()
	return CachedTablesCtx(ctx, r.Cache, cfg.Key(), func() []*Table {
		return cfg.generate(r, ctx, observe)
	})
}

// generate dispatches to the experiment's drivers — the registry
// proper. Every stack a case builds goes through apply, so seed,
// chaos, cache, pool, context, and observer reach every driver.
func (cfg RunConfig) generate(r *Runner, ctx context.Context, observe func(CellEvent)) []*Table {
	stack := func(s *Stack) *Stack {
		s.Seed = cfg.Seed
		s.Parallel = r.Parallel
		s.ChaosSeed = cfg.ChaosSeed
		s.ChaosConfig = cfg.Chaos
		s.Shards = r.Shards
		s.Cache = r.Cache
		s.Pool = r.Pool
		s.Ctx = ctx
		s.Observe = observe
		return s
	}
	var tables []*Table
	emit := func(t *Table) { tables = append(tables, t) }
	switch cfg.Experiment {
	case "nautilus":
		emit(stack(NewStack(cfg.CPUs)).Primitives())
	case "fig3":
		s := stack(NewStack(16))
		f3 := DefaultFig3Config()
		f3.Domains = cfg.Domains
		emit(s.Fig3(f3))
		if cfg.Overheads {
			emit(s.Fig3Overheads(f3))
		}
		if cfg.Sweep {
			if cfg.SmallAxes {
				emit(s.Fig3SweepCounts(20, []int{8, 16, 32, 64, 128}))
			} else {
				emit(s.Fig3Sweep(20))
			}
		}
	case "fig4":
		s := stack(KNLStack(1))
		emit(s.Fig4())
		if cfg.Granularity {
			emit(s.GranularityLimit(0.5))
		}
	case "carat":
		s := stack(NewStack(1))
		emit(s.CARAT())
		if cfg.Mobility {
			emit(s.CARATMobility())
		}
		if cfg.MemStats {
			emit(s.MemStats())
		}
	case "fig6":
		s := stack(KNLStack(1))
		emit(s.Fig6(DefaultFig6Config()))
		if cfg.EPCC {
			emit(s.EPCC(cfg.CPUs))
			emit(s.Schedules(cfg.CPUs))
		}
	case "fig7":
		s := stack(ServerStack())
		emit(s.Fig7())
		if cfg.Sweep {
			if cfg.SmallAxes {
				emit(s.Fig7SweepCores([]int{8, 16, 24, 48}))
			} else {
				emit(s.Fig7Sweep())
			}
		}
		if cfg.Ablate {
			emit(s.AblationSharingClasses())
		}
	case "virtine":
		emit(stack(NewStack(1)).Virtines())
	case "pipeline":
		emit(stack(NewStack(1)).Pipeline())
	case "blending":
		emit(stack(NewStack(1)).Blending())
	case "farmem":
		emit(stack(NewStack(1)).FarMemory())
	case "consistency":
		emit(stack(NewStack(1)).Consistency())
	case "riscv":
		emit(stack(NewStack(cfg.CPUs)).CrossISA())
	case "paging":
		emit(stack(NewStack(1)).Paging())
	case "tasks":
		emit(stack(KNLStack(1)).TaskGranularity(cfg.CPUs))
	default:
		// Validate gates Run; reaching here is a registry bug.
		panic(fmt.Errorf("core: experiment %q validated but not registered", cfg.Experiment))
	}
	return tables
}

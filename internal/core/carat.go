package core

import (
	"fmt"

	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/passes"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// caratResult is one kernel's measurement. Fields are exported: cell
// results cross the cache (gob).
type caratResult struct {
	Name              string
	BaseCycles        int64
	NaiveCycles       int64
	HoistedCycles     int64
	ElimCycles        int64
	OptCycles         int64
	NaiveGuards       int64
	HoistedGuards     int64
	ElimGuards        int64
	NaiveOverhead     float64
	HoistedOverhead   float64
	ElimOverhead      float64
	OptOverhead       float64
	BaseRegs          int
	OptRegs           int
	SemanticsVerified bool
}

// CARAT regenerates the §IV-A overhead result: for each benchmark
// kernel, total cycles without instrumentation, with naive per-access
// guards, with compiler-hoisted guards, with the dataflow layer's
// guard elimination on top of hoisting, and with the full
// analysis-driven optimizer (passes.Optimize) composed under the same
// instrumentation; the paper's claim is that compiler analysis brings
// the geomean overhead under 6%.
func (s *Stack) CARAT() *Table {
	t := &Table{
		ID:     "carat",
		Title:  "CARAT overhead: naive vs hoisted vs analysis-eliminated guards",
		Header: []string{"kernel", "base (Kcyc)", "naive ovh", "hoisted ovh", "elim ovh", "opt ovh", "guards naive", "guards hoisted", "guards elim", "frame regs", "ok"},
	}
	suite := workloads.CARATSuite()
	var naiveOvh, hoistOvh, elimOvh, optOvh []float64
	e := s.KeyEnc("carat")
	for _, k := range suite {
		// Module structure is already in the version salt; the names pin
		// the suite's composition and order.
		e.Str("kernel", k.Name)
	}
	// One cell per kernel: each cell runs the kernel's base, naive,
	// hoisted, eliminated, and optimized configurations on its own
	// interpreter instances.
	for _, r := range runCells(s, "carat", e.Sum(), len(suite), func(i int) caratResult {
		return s.caratKernel(suite[i])
	}) {
		naiveOvh = append(naiveOvh, 1+r.NaiveOverhead)
		hoistOvh = append(hoistOvh, 1+r.HoistedOverhead)
		elimOvh = append(elimOvh, 1+r.ElimOverhead)
		optOvh = append(optOvh, 1+r.OptOverhead)
		ok := "yes"
		if !r.SemanticsVerified {
			ok = "NO"
		}
		t.AddRow(r.Name, f1(float64(r.BaseCycles)/1e3), pct(r.NaiveOverhead),
			pct(r.HoistedOverhead), pct(r.ElimOverhead), pct(r.OptOverhead),
			i64(r.NaiveGuards), i64(r.HoistedGuards), i64(r.ElimGuards),
			fmt.Sprintf("%d->%d", r.BaseRegs, r.OptRegs), ok)
	}
	t.AddRow("geomean", "", pct(stats.GeoMean(naiveOvh)-1), pct(stats.GeoMean(hoistOvh)-1),
		pct(stats.GeoMean(elimOvh)-1), pct(stats.GeoMean(optOvh)-1), "", "", "", "", "")
	t.AddNote("paper: overheads are <6%% (geometric mean) across NAS, Mantevo, and PARSEC benchmarks after aggregation and hoisting")
	t.AddNote("elim = hoist + dataflow guard elimination (available/provable checks deleted; see internal/analysis)")
	t.AddNote("opt = analysis-driven optimizer (global DCE, copy coalescing, LICM) under elim instrumentation; overhead stays relative to the unoptimized base, so negative values mean the optimized+guarded kernel beats the pristine one")
	t.AddNote("frame regs: entry-frame registers before -> after copy coalescing (both engines allocate exactly this many words per call)")
	return t
}

// caratKernel measures one kernel in all five configurations.
func (s *Stack) caratKernel(k workloads.IRKernel) caratResult {
	// Each configuration builds a fresh module; mk is handed the module
	// so pipelines that need it (StdOptimization) can be constructed.
	run := func(mk func(m *ir.Module) []passes.Pass) (uint64, *interp.Stats, int, error) {
		m := k.Build()
		if mk != nil {
			if err := passes.RunAll(m, mk(m)...); err != nil {
				return 0, nil, 0, err
			}
		}
		ip, err := interp.New(m)
		if err != nil {
			return 0, nil, 0, err
		}
		tb := carat.NewTable()
		ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
		ip.Hooks.GuardRegion = tb.GuardRegion
		ip.Hooks.TrackAlloc = tb.TrackAlloc
		ip.Hooks.TrackFree = tb.TrackFree
		ip.Hooks.TrackEsc = tb.TrackEscape
		got, err := ip.Call(k.Entry)
		if err != nil {
			return 0, nil, 0, err
		}
		if tb.Violations > 0 {
			return 0, nil, 0, fmt.Errorf("carat: %d spurious violations in %s", tb.Violations, k.Name)
		}
		return got, &ip.Stats, m.Funcs[k.Entry].NumRegs, nil
	}
	base, baseStats, baseRegs, err := run(nil)
	if err != nil {
		panic(err)
	}
	naive, naiveStats, _, err := run(func(*ir.Module) []passes.Pass {
		return []passes.Pass{&passes.CARATInject{}}
	})
	if err != nil {
		panic(err)
	}
	hoisted, hoistedStats, _, err := run(func(*ir.Module) []passes.Pass {
		return []passes.Pass{&passes.CARATInject{}, &passes.CARATHoist{}}
	})
	if err != nil {
		panic(err)
	}
	elim, elimStats, _, err := run(func(*ir.Module) []passes.Pass {
		return []passes.Pass{&passes.CARATInject{}, &passes.CARATHoist{}, &passes.CARATElim{}}
	})
	if err != nil {
		panic(err)
	}
	// opt: the instrument+hoist+eliminate pipeline as in elim, then the
	// analysis-driven optimizer over the instrumented module — guards
	// and tracking calls are roots the optimizer must preserve while it
	// shrinks everything around them.
	opt, optStats, optRegs, err := run(func(m *ir.Module) []passes.Pass {
		return append([]passes.Pass{&passes.CARATInject{}, &passes.CARATHoist{}, &passes.CARATElim{}},
			passes.StdOptimization(m)...)
	})
	if err != nil {
		panic(err)
	}
	return caratResult{
		Name:              k.Name,
		BaseCycles:        baseStats.Cycles,
		NaiveCycles:       naiveStats.Cycles,
		HoistedCycles:     hoistedStats.Cycles,
		ElimCycles:        elimStats.Cycles,
		OptCycles:         optStats.Cycles,
		NaiveGuards:       naiveStats.Guards,
		HoistedGuards:     hoistedStats.Guards,
		ElimGuards:        elimStats.Guards,
		NaiveOverhead:     float64(naiveStats.Cycles-baseStats.Cycles) / float64(baseStats.Cycles),
		HoistedOverhead:   float64(hoistedStats.Cycles-baseStats.Cycles) / float64(baseStats.Cycles),
		ElimOverhead:      float64(elimStats.Cycles-baseStats.Cycles) / float64(baseStats.Cycles),
		OptOverhead:       float64(optStats.Cycles-baseStats.Cycles) / float64(baseStats.Cycles),
		BaseRegs:          baseRegs,
		OptRegs:           optRegs,
		SemanticsVerified: base == naive && naive == hoisted && hoisted == elim && elim == opt && (k.Want == 0 || base == k.Want),
	}
}

// CARATMobility regenerates the data-mobility side of §IV-A: whole-heap
// compaction (defragmentation) with pointer patching, at arbitrary
// granularity, plus the protection-domain demonstration.
func (s *Stack) CARATMobility() *Table {
	t := &Table{
		ID:     "carat-mobility",
		Title:  "CARAT data mobility: heap compaction with pointer patching",
		Header: []string{"metric", "before", "after"},
	}
	h, err := interp.NewHeap(0x10000, 64<<20)
	if err != nil {
		panic(err)
	}
	tb := carat.NewTable()
	// CARAT manages a flat arena at arbitrary granularity (no pages, no
	// buddy blocks): place regions with gaps, then free every other one
	// — classic fragmentation.
	const arena = mem.Addr(0x100_0000)
	const regionSize = 4096
	var bases []mem.Addr
	for i := 0; i < 512; i++ {
		a := arena + mem.Addr(i*2*regionSize)
		tb.TrackAlloc(a, regionSize)
		h.Store(a, uint64(i))
		bases = append(bases, a)
	}
	// Free every other region, then link each survivor to the next
	// survivor (a live linked structure crossing the fragmented heap).
	for i := 0; i < len(bases); i += 2 {
		tb.TrackFree(bases[i])
	}
	var survivors []mem.Addr
	for i := 1; i < len(bases); i += 2 {
		survivors = append(survivors, bases[i])
	}
	for i := 0; i+1 < len(survivors); i++ {
		h.Store(survivors[i]+8, uint64(survivors[i+1]))
		tb.TrackEscape(survivors[i]+8, uint64(survivors[i+1]))
	}
	beforeLargest := largestGap(tb, arena, 512*2*regionSize)
	beforeRegions := tb.Len()

	// Compact the survivors down toward the arena base.
	cost, err := tb.Compact(h, arena, 64)
	if err != nil {
		panic(err)
	}
	// Verify pointer integrity: compaction preserves address order, so
	// survivor k now lives at Regions()[k] and must point exactly at
	// Regions()[k+1]'s new base.
	intact := true
	rs := tb.Regions()
	if len(rs) != len(survivors) {
		intact = false
	}
	for idx := 0; intact && idx+1 < len(rs); idx++ {
		if h.Load(rs[idx].Base+8) != uint64(rs[idx+1].Base) {
			intact = false
		}
	}
	afterLargest := largestGap(tb, arena, 512*2*regionSize)
	t.AddRow("tracked regions", i64(int64(beforeRegions)), i64(int64(tb.Len())))
	t.AddRow("largest free span (KiB)", i64(int64(beforeLargest)/1024), i64(int64(afterLargest)/1024))
	t.AddRow("pointers patched", "", i64(tb.PointersFixed))
	t.AddRow("compaction cost (Kcyc)", "", f1(float64(cost)/1e3))
	t.AddRow("pointer integrity", "", map[bool]string{true: "verified", false: "BROKEN"}[intact])
	t.AddNote("memory is managed at arbitrary granularity (64-byte alignment here), not page granularity; movement works like a GC with compiler-tracked escapes")
	return t
}

// largestGap returns the largest contiguous unused span within the
// arena [base, base+size) given the tracked regions.
func largestGap(tb *carat.Table, base mem.Addr, size uint64) uint64 {
	cursor := base
	end := base + mem.Addr(size)
	var best uint64
	for _, r := range tb.Regions() {
		if r.Base < base || r.Base >= end {
			continue
		}
		if r.Base > cursor {
			if g := uint64(r.Base - cursor); g > best {
				best = g
			}
		}
		cursor = r.Base + mem.Addr(r.Size)
	}
	if cursor < end {
		if g := uint64(end - cursor); g > best {
			best = g
		}
	}
	return best
}

package core

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/virtine"
)

// fibModule builds the paper's Fig. 5 running example.
func fibModule() *ir.Module {
	m := ir.NewModule("fib")
	f := m.NewFunction("fib", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	two := b.Const(2)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLT, n, two), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	one := b.Const(1)
	x := b.Call("fib", b.Sub(n, one))
	y := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(x, y))
	return m
}

// Virtines regenerates the §IV-D result: start-up latency by path
// (cold / snapshot / pooled), bespoke-context savings (§V-E), and the
// conventional isolation baselines, running the Fig. 5 fib example in
// genuinely isolated contexts.
func (s *Stack) Virtines() *Table {
	t := &Table{
		ID:     "virtine",
		Title:  "Virtine start-up latency by path (fib example, Fig. 5)",
		Header: []string{"path / context", "startup", "exec", "total", "result"},
	}
	w := virtine.NewWasp(s.Model)
	spec := &virtine.Spec{Mod: fibModule(), Entry: "fib", Boot: virtine.Boot64, NeedFP: true, NeedIO: true}

	for _, path := range []virtine.StartPath{virtine.StartCold, virtine.StartSnapshot, virtine.StartPooled} {
		// Prime snapshot/pool paths so the steady-state cost shows.
		if path != virtine.StartCold {
			if _, _, err := w.Invoke(spec, path, 10); err != nil {
				panic(err)
			}
		}
		ret, lat, err := w.Invoke(spec, path, 10)
		if err != nil {
			panic(err)
		}
		t.AddRow(path.String(), s.us(lat.StartupCycles), s.us(lat.ExecCycles), s.us(lat.Total()), i64(int64(ret)))
	}

	// Bespoke contexts: the same function needing less environment.
	for _, boot := range []virtine.BootLevel{virtine.Boot16, virtine.Boot32, virtine.Boot64} {
		sp := &virtine.Spec{Mod: fibModule(), Entry: "fib", Boot: boot}
		cold := w.Model.Virtine.VMCreate + w.BootCycles(sp)
		t.AddRow("bespoke "+boot.String()+" (cold)", s.us(cold), "", "", "")
	}

	t.AddRow("baseline fork/exec", s.us(w.ProcessBaselineCycles()), "", "", "")
	t.AddRow("baseline container", s.us(w.ContainerBaselineCycles()), "", "", "")

	// Service under load: Poisson arrivals at one request per 150 µs,
	// 10 µs of function work, per-request isolation. The pooled-virtine
	// and fork/exec simulations are independent cells: each gets a
	// generator pre-split from the stack seed in index order, so the
	// results are bit-identical at any pool width.
	svc := virtine.ServiceConfig{
		ArrivalMeanCycles: 150_000, Requests: 4000, ExecCycles: 10_000,
	}
	pooled := svc
	pooled.StartupCycles = s.Model.Virtine.PoolHandoff
	fork := svc
	fork.StartupCycles = w.ProcessBaselineCycles()
	cfgs := []virtine.ServiceConfig{pooled, fork}
	e := s.KeyEnc("virtine-svc")
	for _, c := range cfgs {
		e.F64("arrival-mean", c.ArrivalMeanCycles)
		e.Int("requests", c.Requests)
		e.I64("exec", c.ExecCycles)
		e.I64("startup", c.StartupCycles)
	}
	key := e.Sum()
	// The RNGs are pre-split in index order whether or not a cell hits
	// the cache, so the root generator advances identically on warm and
	// cold runs — anything seeded after this stays byte-identical.
	p := s.pool()
	svcRes, err := exp.MapRNG(p, sim.NewRNG(s.Seed), len(cfgs),
		func(i int, rng *sim.RNG) (virtine.ServiceResult, error) {
			return cachedCell(s, p, "virtine-svc", key, i, len(cfgs), func() virtine.ServiceResult {
				c := cfgs[i]
				c.RNG = rng
				return virtine.SimulateService(c)
			}), nil
		})
	if err != nil {
		panic(err)
	}
	rp, rf := svcRes[0], svcRes[1]
	t.AddRow("service p99 (pooled virtines)", s.us(int64(rp.Latency.P99)), "", "",
		fmt.Sprintf("util %.0f%%", rp.Utilization*100))
	t.AddRow("service p99 (fork/exec)", s.us(int64(rf.Latency.P99)), "", "",
		fmt.Sprintf("util %.0f%%", rf.Utilization*100))
	t.AddNote("paper: start-up overheads as low as 100µs; bespoke contexts (§V-E) can stop boot in 16-bit mode for simple services")
	t.AddNote("under a 1-request-per-150µs load, per-request fork isolation saturates while pooled virtines stay near service time")
	return t
}

// Pipeline regenerates the §V-D result: interrupt delivery latency under
// IDT dispatch vs pipeline (branch-injection) delivery, and the usable
// preemption granularity each permits.
func (s *Stack) Pipeline() *Table {
	t := &Table{
		ID:     "pipeline",
		Title:  "Interrupt delivery: IDT dispatch vs pipeline injection",
		Header: []string{"metric", "IDT", "pipeline", "improvement"},
	}
	// Imported lazily to avoid a cycle: the pipeline package only
	// depends on machine/model/stats.
	r := pipelineCompare(s)
	t.AddRow("mean latency (cyc)", f1(r.idtMean), f1(r.pipeMean), f1(r.idtMean/r.pipeMean)+"x")
	t.AddRow("p99 latency (cyc)", f1(r.idtP99), f1(r.pipeP99), f1(r.idtP99/r.pipeP99)+"x")
	t.AddRow("min period @5% ovh (cyc)", i64(r.idtGran), i64(r.pipeGran),
		f1(float64(r.idtGran)/float64(r.pipeGran))+"x")
	t.AddNote("paper: dispatch costs ~1000 cycles; branch-injected delivery would be 100-1000x better; candidates: LAPIC timer, #MF/#XF, #GP")
	return t
}

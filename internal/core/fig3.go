package core

import (
	"fmt"

	"repro/internal/heartbeat"
	"repro/internal/stats"
)

// Fig3Config parameterizes the heartbeat-rate experiment.
type Fig3Config struct {
	CPUs int
	// PeriodsUS are the heartbeat targets ♥ in microseconds.
	PeriodsUS []float64
	// Items/CyclesPerItem/Grain shape the TPAL workload.
	Items         int64
	CyclesPerItem int64
	Grain         int64
}

// DefaultFig3Config matches the paper: 16 CPUs, ♥ ∈ {20 µs, 100 µs}.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		CPUs:          16,
		PeriodsUS:     []float64{20, 100},
		Items:         4_000_000,
		CyclesPerItem: 40,
		Grain:         64,
	}
}

// Fig3 regenerates Figure 3: achieved vs target heartbeat rate for
// Nautilus (LAPIC+IPI) and Linux (signals) at each ♥, plus rate
// stability (coefficient of variation of inter-beat gaps).
func (s *Stack) Fig3(cfg Fig3Config) *Table {
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Achieved vs target heartbeat rate (%d CPUs)", cfg.CPUs),
		Header: []string{"substrate", "target ♥", "target rate/Mcyc", "achieved rate/Mcyc", "achieved/target", "gap CV"},
	}
	for _, us := range cfg.PeriodsUS {
		period := s.Model.MicrosToCycles(us)
		target := 1e6 / float64(period)
		for _, sub := range []heartbeat.Substrate{heartbeat.SubstrateNautilusIPI, heartbeat.SubstrateLinuxSignals} {
			rt := s.heartbeatRun(cfg, sub, period)
			rates := rt.AchievedRates()
			achieved := stats.Mean(rates)
			cv := stats.CoefVar(rt.InterBeatGaps())
			t.AddRow(sub.String(), fmt.Sprintf("%.0fµs", us),
				f1(target), f1(achieved), f2(achieved/target), f2(cv))
		}
	}
	t.AddNote("paper: Nautilus hits the target with a consistent, stable rate at both 100µs and 20µs; the best Linux mechanism cannot sustain the rate even at 100µs and 16 CPUs")
	return t
}

// Fig3Overheads regenerates the §IV-B overhead comparison: TPAL
// scheduling overhead under the Nautilus interrupt substrate versus the
// best Linux mechanism (software polling), at ♥ = 100 µs.
func (s *Stack) Fig3Overheads(cfg Fig3Config) *Table {
	t := &Table{
		ID:     "fig3-overheads",
		Title:  "Heartbeat scheduling overhead (♥ = 100µs)",
		Header: []string{"substrate", "overhead", "promotions", "completion (Mcyc)"},
	}
	period := s.Model.MicrosToCycles(100)
	for _, sub := range []heartbeat.Substrate{
		heartbeat.SubstrateNautilusIPI,
		heartbeat.SubstrateLinuxPolling,
	} {
		rt := s.heartbeatRun(cfg, sub, period)
		var promos int64
		for i := 0; i < rt.NumWorkers(); i++ {
			promos += rt.WorkerStats(i).Promotions
		}
		t.AddRow(sub.String(), pct(rt.OverheadFraction()), i64(promos),
			f1(float64(rt.DoneAt())/1e6))
	}
	t.AddNote("paper: scheduling overheads are 13-22%% on Linux, and reduce to at most 4.9%% in Nautilus")
	return t
}

func (s *Stack) heartbeatRun(cfg Fig3Config, sub heartbeat.Substrate, period int64) *heartbeat.Runtime {
	st := *s
	st.Topo.Sockets = 1
	st.Topo.CoresPerSocket = cfg.CPUs
	_, m := st.Build()
	hcfg := heartbeat.DefaultConfig()
	hcfg.Substrate = sub
	hcfg.PeriodCycles = period
	hcfg.Seed = s.Seed
	rt := heartbeat.New(m, hcfg)
	rt.Run(cfg.Items, cfg.CyclesPerItem, cfg.Grain)
	return rt
}

// Fig3Sweep regenerates the scale dimension of §IV-B: the Linux pacer
// serializes one pthread_kill per worker, so its achievable rate decays
// as CPUs grow, while the Nautilus IPI broadcast holds the target.
func (s *Stack) Fig3Sweep(periodUS float64) *Table {
	t := &Table{
		ID:     "fig3-sweep",
		Title:  fmt.Sprintf("Heartbeat rate vs CPU count (♥ = %.0fµs)", periodUS),
		Header: []string{"CPUs", "nautilus achieved/target", "linux achieved/target"},
	}
	for _, cpus := range []int{8, 16, 32, 64, 128} {
		cfg := DefaultFig3Config()
		cfg.CPUs = cpus
		cfg.Items = 1_500_000
		period := s.Model.MicrosToCycles(periodUS)
		target := 1e6 / float64(period)
		row := []string{i64(int64(cpus))}
		for _, sub := range []heartbeat.Substrate{heartbeat.SubstrateNautilusIPI, heartbeat.SubstrateLinuxSignals} {
			rt := s.heartbeatRun(cfg, sub, period)
			row = append(row, f2(stats.Mean(rt.AchievedRates())/target))
		}
		t.AddRow(row...)
	}
	t.AddNote("below ~32 CPUs the kernel timer floor binds; beyond it the pacer's serialized per-worker signaling compounds, while the LAPIC broadcast holds the target at every scale")
	return t
}

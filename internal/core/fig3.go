package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/heartbeat"
	"repro/internal/stats"
)

// Fig3Config parameterizes the heartbeat-rate experiment.
type Fig3Config struct {
	CPUs int
	// PeriodsUS are the heartbeat targets ♥ in microseconds.
	PeriodsUS []float64
	// Items/CyclesPerItem/Grain shape the TPAL workload.
	Items         int64
	CyclesPerItem int64
	Grain         int64
	// Domains, when > 1, runs the heartbeat runtime in steal-domain
	// mode with that many domains, and (unless the stack pins Shards
	// to 1, the sequential oracle) builds the machine on a sharded
	// engine with one shard per domain. 0 keeps the legacy global-
	// stealing runtime on the sequential engine.
	Domains int
}

// enc appends the config's canonical key fields. Domains is included:
// steal-domain mode changes which worker steals from whom, so it is a
// semantic coordinate, not an execution knob.
func (cfg Fig3Config) enc(e *cache.Enc) {
	e.Int("cpus", cfg.CPUs)
	e.F64s("periods-us", cfg.PeriodsUS)
	e.I64("items", cfg.Items)
	e.I64("cycles-per-item", cfg.CyclesPerItem)
	e.I64("grain", cfg.Grain)
	e.Int("domains", cfg.Domains)
}

// DefaultFig3Config matches the paper: 16 CPUs, ♥ ∈ {20 µs, 100 µs}.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		CPUs:          16,
		PeriodsUS:     []float64{20, 100},
		Items:         4_000_000,
		CyclesPerItem: 40,
		Grain:         64,
	}
}

// Fig3 regenerates Figure 3: achieved vs target heartbeat rate for
// Nautilus (LAPIC+IPI) and Linux (signals) at each ♥, plus rate
// stability (coefficient of variation of inter-beat gaps).
func (s *Stack) Fig3(cfg Fig3Config) *Table {
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Achieved vs target heartbeat rate (%d CPUs)", cfg.CPUs),
		Header: []string{"substrate", "target ♥", "target rate/Mcyc", "achieved rate/Mcyc", "achieved/target", "gap CV"},
	}
	type cell struct {
		us  float64
		sub heartbeat.Substrate
	}
	var cs []cell
	for _, us := range cfg.PeriodsUS {
		for _, sub := range []heartbeat.Substrate{heartbeat.SubstrateNautilusIPI, heartbeat.SubstrateLinuxSignals} {
			cs = append(cs, cell{us, sub})
		}
	}
	e := s.KeyEnc("fig3")
	cfg.enc(e)
	for _, row := range runCells(s, "fig3", e.Sum(), len(cs), func(i int) []string {
		c := cs[i]
		period := s.Model.MicrosToCycles(c.us)
		target := 1e6 / float64(period)
		rt := s.heartbeatRun(cfg, c.sub, period)
		achieved := stats.Mean(rt.AchievedRates())
		cv := stats.CoefVar(rt.InterBeatGaps())
		return []string{c.sub.String(), fmt.Sprintf("%.0fµs", c.us),
			f1(target), f1(achieved), f2(achieved / target), f2(cv)}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("paper: Nautilus hits the target with a consistent, stable rate at both 100µs and 20µs; the best Linux mechanism cannot sustain the rate even at 100µs and 16 CPUs")
	return t
}

// Fig3Overheads regenerates the §IV-B overhead comparison: TPAL
// scheduling overhead under the Nautilus interrupt substrate versus the
// best Linux mechanism (software polling), at ♥ = 100 µs.
func (s *Stack) Fig3Overheads(cfg Fig3Config) *Table {
	t := &Table{
		ID:     "fig3-overheads",
		Title:  "Heartbeat scheduling overhead (♥ = 100µs)",
		Header: []string{"substrate", "overhead", "promotions", "completion (Mcyc)"},
	}
	period := s.Model.MicrosToCycles(100)
	subs := []heartbeat.Substrate{
		heartbeat.SubstrateNautilusIPI,
		heartbeat.SubstrateLinuxPolling,
	}
	e := s.KeyEnc("fig3-overheads")
	cfg.enc(e)
	for _, row := range runCells(s, "fig3-overheads", e.Sum(), len(subs), func(i int) []string {
		rt := s.heartbeatRun(cfg, subs[i], period)
		var promos int64
		for w := 0; w < rt.NumWorkers(); w++ {
			promos += rt.WorkerStats(w).Promotions
		}
		return []string{subs[i].String(), pct(rt.OverheadFraction()), i64(promos),
			f1(float64(rt.DoneAt()) / 1e6)}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("paper: scheduling overheads are 13-22%% on Linux, and reduce to at most 4.9%% in Nautilus")
	return t
}

func (s *Stack) heartbeatRun(cfg Fig3Config, sub heartbeat.Substrate, period int64) *heartbeat.Runtime {
	st := s.WithCPUs(cfg.CPUs)
	if cfg.Domains > 1 && s.Shards != 1 {
		st.Shards = cfg.Domains
	}
	_, m := st.Build()
	hcfg := heartbeat.DefaultConfig()
	hcfg.Substrate = sub
	hcfg.PeriodCycles = period
	hcfg.Seed = s.Seed
	hcfg.Domains = cfg.Domains
	rt := heartbeat.New(m, hcfg)
	rt.Run(cfg.Items, cfg.CyclesPerItem, cfg.Grain)
	return rt
}

// DefaultFig3SweepCounts is Fig3Sweep's CPU axis: the paper's original
// small-N points plus the 256–1024 range where the sharded engine's
// steal domains carry the simulation.
var DefaultFig3SweepCounts = []int{8, 16, 32, 64, 128, 256, 512, 1024}

// Fig3SweepDomains returns the steal-domain (= engine shard) count used
// for a sweep point: one domain per 32 CPUs once the machine is large
// enough that a single event queue becomes the bottleneck, and the
// legacy single-domain runtime below that.
func Fig3SweepDomains(cpus int) int {
	if cpus < 256 {
		return 0
	}
	return cpus / 32
}

// Fig3SweepItems returns the workload size for a sweep point: the
// original fixed load, grown at large CPU counts so every worker still
// sees enough slices and beats for stable rate statistics.
func Fig3SweepItems(cpus int) int64 {
	if items := int64(cpus) * 8_000; items > 1_500_000 {
		return items
	}
	return 1_500_000
}

// Fig3Sweep regenerates the scale dimension of §IV-B over the default
// CPU axis: the Linux pacer serializes one pthread_kill per worker, so
// its achievable rate decays as CPUs grow, while the Nautilus IPI
// broadcast holds the target.
func (s *Stack) Fig3Sweep(periodUS float64) *Table {
	return s.Fig3SweepCounts(periodUS, DefaultFig3SweepCounts)
}

// Fig3SweepCounts is Fig3Sweep with an explicit CPU axis. Points at 256
// CPUs and above run in steal-domain mode on the sharded engine (one
// domain per 32 CPUs) with a proportionally larger workload; results
// are byte-identical to the sequential engine either way.
func (s *Stack) Fig3SweepCounts(periodUS float64, cpuCounts []int) *Table {
	t := &Table{
		ID:     "fig3-sweep",
		Title:  fmt.Sprintf("Heartbeat rate vs CPU count (♥ = %.0fµs)", periodUS),
		Header: []string{"CPUs", "nautilus achieved/target", "linux achieved/target"},
	}
	subs := []heartbeat.Substrate{heartbeat.SubstrateNautilusIPI, heartbeat.SubstrateLinuxSignals}
	e := s.KeyEnc("fig3-sweep")
	e.F64("period-us", periodUS)
	e.Ints("cpu-counts", cpuCounts)
	// One cell per (CPU count, substrate) point; rows are assembled from
	// the index-ordered results, so output is identical at any pool width.
	ratios := runCells(s, "fig3-sweep", e.Sum(), len(cpuCounts)*len(subs), func(i int) string {
		cfg := DefaultFig3Config()
		cfg.CPUs = cpuCounts[i/len(subs)]
		cfg.Items = Fig3SweepItems(cfg.CPUs)
		cfg.Domains = Fig3SweepDomains(cfg.CPUs)
		period := s.Model.MicrosToCycles(periodUS)
		target := 1e6 / float64(period)
		rt := s.heartbeatRun(cfg, subs[i%len(subs)], period)
		return f2(stats.Mean(rt.AchievedRates()) / target)
	})
	for ci, cpus := range cpuCounts {
		t.AddRow(i64(int64(cpus)), ratios[ci*len(subs)], ratios[ci*len(subs)+1])
	}
	t.AddNote("below ~32 CPUs the kernel timer floor binds; beyond it the pacer's serialized per-worker signaling compounds, while the LAPIC broadcast holds the target at every scale")
	return t
}

package core

import (
	"repro/internal/heartbeat"
	"repro/internal/linux"
	"repro/internal/nautilus"
	"repro/internal/omp"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Primitives regenerates the §III background claims (E1): Nautilus's
// streamlined kernel primitives versus the commodity stack — thread
// creation, event signaling (mean and tail), and context switching —
// plus an application-level speedup measured on the heartbeat workload.
func (s *Stack) Primitives() *Table {
	t := &Table{
		ID:     "nautilus",
		Title:  "Nautilus primitives vs commodity stack",
		Header: []string{"primitive", "linux (cyc)", "nautilus (cyc)", "ratio"},
	}
	_, m := s.Build()
	lx := linux.New(m, s.Seed)
	nk := s.Model.Nautilus
	hw := s.Model.HW

	// Thread creation: clone+sched setup vs streamlined create.
	lxCreate := lx.SyscallCost() + s.Model.Linux.SchedulerPick + s.Model.Linux.ContextSwitchExtra
	t.AddRow("thread create", i64(lxCreate), i64(nk.ThreadCreate),
		f1(float64(lxCreate)/float64(nk.ThreadCreate))+"x")

	// Event signal (mean): signal path vs kernel event + IPI.
	lxSignal := lx.SignalPathCost()
	nkSignal := nk.EventWakeup + hw.IPILatency
	t.AddRow("event signal (mean)", i64(lxSignal), i64(nkSignal),
		f1(float64(lxSignal)/float64(nkSignal))+"x")

	// Event signal (p99 under load): the tail is where "orders of
	// magnitude" shows up [36]. Sample delivery including jitter and
	// noise.
	lxTail := s.linuxSignalTailP99(lx)
	t.AddRow("event signal (p99 loaded)", i64(lxTail), i64(nkSignal),
		f1(float64(lxTail)/float64(nkSignal))+"x")

	// Context switch.
	lxSwitch := lx.ContextSwitchCost(true)
	nkSwitch := s.measureSwitch(fig4Bar{
		timing: nautilus.TimingHWTimer, class: nautilus.ClassThread,
		opts: nautilus.ThreadOpts{FP: true},
	})
	t.AddRow("context switch (FP)", i64(lxSwitch), i64(nkSwitch),
		f1(float64(lxSwitch)/float64(nkSwitch))+"x")

	// Application benchmarks: the heartbeat workload end-to-end (lower
	// bound) and an OpenMP NAS-shaped app at scale (the §III-style
	// 20-40% case).
	lxApp := s.appCompletion(heartbeat.SubstrateLinuxPolling)
	nkApp := s.appCompletion(heartbeat.SubstrateNautilusIPI)
	t.AddRow("heartbeat app (Mcyc)", f1(float64(lxApp)/1e6), f1(float64(nkApp)/1e6),
		pct(float64(lxApp)/float64(nkApp)-1)+" speedup")
	bt := workloads.BT()
	bt.Steps = 4
	lxOMP := s.ompRun(omp.ModeLinux, 64, bt)
	nkOMP := s.ompRun(omp.ModeRTK, 64, bt)
	t.AddRow("OpenMP app, 64 CPUs (Mcyc)", f1(float64(lxOMP)/1e6), f1(float64(nkOMP)/1e6),
		pct(float64(lxOMP)/float64(nkOMP)-1)+" speedup")
	t.AddNote("paper (§III): application speedups of 20-40%% over user-level Linux; primitives such as thread management and event signaling are orders of magnitude faster (tail latencies)")
	return t
}

// linuxSignalTailP99 samples loaded signal-delivery latencies.
func (s *Stack) linuxSignalTailP99(lx *linux.Stack) int64 {
	var xs []float64
	base := float64(lx.SignalPathCost())
	for i := 0; i < 5000; i++ {
		v := base + float64(lx.SampleTimerJitter())
		if lx.NoiseHits(int64(base * 4)) {
			v += float64(lx.SampleNoise())
		}
		xs = append(xs, v)
	}
	return int64(stats.Percentile(xs, 99))
}

// appCompletion runs the heartbeat workload on a substrate and returns
// its completion time.
func (s *Stack) appCompletion(sub heartbeat.Substrate) sim.Time {
	st := s.WithCPUs(16)
	_, m := st.Build()
	cfg := heartbeat.DefaultConfig()
	cfg.Substrate = sub
	cfg.PeriodCycles = s.Model.MicrosToCycles(100)
	cfg.Seed = s.Seed
	rt := heartbeat.New(m, cfg)
	rt.Run(2_000_000, 40, 64)
	return rt.DoneAt()
}

// Package core is the public face of the reproduction: it composes the
// compiler passes, runtimes, kernels, and hardware models of internal/*
// into the interwoven stacks the paper describes, and provides one
// harness per table/figure that regenerates the paper's results.
//
// The paper's primary contribution is the *interweaving model* itself —
// custom integration of functionality formerly kept distinct at each
// layer. Stack is that model made concrete: a builder that selects a
// hardware platform, a kernel timing discipline, compiler passes, and a
// runtime, and wires them together.
package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// Table is a printable experiment result, shaped like the paper's
// figures' underlying data.
type Table struct {
	ID     string // experiment id, e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// JSON renders the table as a JSON object for downstream tooling.
func (t *Table) JSON() string {
	b, err := json.MarshalIndent(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}, "", "  ")
	if err != nil {
		// The table is plain strings; marshalling cannot fail.
		panic(err)
	}
	return string(b)
}

// Digest returns a canonical FNV-1a digest of the table's content: ID,
// header, rows, and notes, each length-prefixed so cell boundaries are
// part of the form. Two tables render identically (String and JSON are
// pure functions of these fields plus Title) exactly when their
// ID/header/rows/notes agree, so the digest doubles as the cache's
// integrity check and as benchdiff's output-identity probe — and is
// invariant across pool widths, engines, and cache state by the
// package's determinism guarantee.
func (t *Table) Digest() uint64 {
	h := fnv.New64a()
	put := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	putRow := func(cells []string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(cells)))
		h.Write(n[:])
		for _, c := range cells {
			put(c)
		}
	}
	put(t.ID)
	putRow(t.Header)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(t.Rows)))
	h.Write(n[:])
	for _, r := range t.Rows {
		putRow(r)
	}
	putRow(t.Notes)
	return h.Sum64()
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Stack is the interweaving builder: it fixes a platform model,
// topology, and seed, and constructs the simulated machine the layered
// components run on.
type Stack struct {
	Model model.Model
	Topo  machine.Topology
	Seed  uint64
	// Parallel bounds how many independent experiment cells (sweep
	// points, substrates, benchmarks) run concurrently: 0 means
	// exp.DefaultWorkers() ($INTERWEAVE_PARALLEL or GOMAXPROCS), 1
	// forces sequential execution. Results are bit-identical at every
	// setting: each cell builds its own machine and RNG from the seed,
	// and rows are assembled in canonical order.
	Parallel int
	// Shards selects the discrete-event engine Build constructs: > 1
	// builds a sim.ShardedEngine with that many shards (lookahead =
	// the model's IPI latency) so event windows advance concurrently;
	// 0 or 1 builds the sequential engine. Sharding is opted into per
	// run by the drivers whose workloads honor the shard-safety
	// contract (heartbeat domain mode); runs on either engine are
	// byte-identical. 1 forces the sequential oracle even where a
	// driver would otherwise shard.
	Shards int
	// ChaosSeed, when non-zero, arms the deterministic fault-injection
	// harness (internal/chaos) on every machine this stack builds: IPI
	// drop/delay and LAPIC timer jitter at the hardware layer, with
	// rates from chaos.DefaultConfig. Every Build derives a fresh plan
	// from this same seed, so each experiment cell sees an identical,
	// replayable fault schedule regardless of which pool worker runs it
	// — output stays byte-identical across -parallel settings, and
	// byte-identical between two runs with the same -chaos-seed.
	ChaosSeed uint64
	// Cache, when non-nil, memoizes experiment cells content-addressed
	// by (version salt, model, topology, seed, chaos plan, driver
	// config, cell index) — see internal/cache and KeyEnc. Every cell
	// is a pure function of those coordinates, so cached and uncached
	// runs are byte-identical; the cache only changes wall-clock.
	// Stacks derived with WithCPUs inherit it.
	Cache *cache.Cache
	// ChaosConfig overrides the fault rates a nonzero ChaosSeed arms
	// (nil means chaos.DefaultConfig()). It is a result coordinate:
	// KeyEnc folds the effective config into every armed key.
	ChaosConfig *chaos.Config
	// Pool, when non-nil, is the worker pool every driver admits its
	// cells through, instead of a fresh exp.New(Parallel) per driver
	// call. A long-running service sets one shared pool on every stack
	// it builds, so total cell concurrency across all concurrent jobs
	// stays bounded and coalesced cache waiters hand their slots to the
	// leaders computing their results on the same semaphore.
	Pool *exp.Pool
	// Ctx, when non-nil, cancels the stack's drivers between cells:
	// cells that have not started when Ctx ends are skipped and the
	// driver fails with Ctx's error. Cells already running — including
	// cache-flight leaders — always run to completion, so cancellation
	// never leaves a partial result in the cache. Nil means never
	// cancelled.
	Ctx context.Context
	// Observe, when non-nil, receives a CellEvent as each experiment
	// cell completes, with the cache tier that served it. At Parallel 1
	// the sequence is deterministic (cells complete in index order);
	// wider pools report completion order.
	Observe func(CellEvent)
}

// CellEvent reports the completion of one experiment cell — the
// progress granule the experiment service streams to clients.
type CellEvent struct {
	Driver string       // driver id, e.g. "fig3-sweep"
	Cell   int          // cell index within the driver invocation
	Of     int          // total cells in the driver invocation
	Source cache.Source // tier that served the result
}

// ctx returns the stack's context, never nil.
func (s *Stack) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// chaosConfig returns the fault rates a nonzero ChaosSeed arms.
func (s *Stack) chaosConfig() chaos.Config {
	if s.ChaosConfig != nil {
		return *s.ChaosConfig
	}
	return chaos.DefaultConfig()
}

// pool returns the worker pool for this stack's experiment cells: the
// shared Pool when one is set, else a fresh pool of width Parallel.
func (s *Stack) pool() *exp.Pool {
	if s.Pool != nil {
		return s.Pool
	}
	return exp.New(s.Parallel)
}

// runCells evaluates n independent experiment cells on s's pool and
// returns the results in index order, panicking on any cell failure
// (the drivers' error discipline throughout this package). driver is
// the driver id (the same string its KeyEnc was started with) and key
// its canonical cache key; when the stack carries a cache, each cell is
// looked up / stored under (key, i, n), with duplicate in-flight cells
// coalesced across concurrent drivers. When the stack's Ctx ends,
// cells that have not started are skipped and the cancellation
// surfaces through the driver's panic as a *exp.CellError chain.
func runCells[T any](s *Stack, driver string, key cache.Key, n int, fn func(i int) T) []T {
	p := s.pool()
	out, err := exp.Map(p, n, func(i int) (T, error) {
		if err := s.ctx().Err(); err != nil {
			var zero T
			return zero, err
		}
		return cachedCell(s, p, driver, key, i, n, func() T { return fn(i) }), nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// NewStack returns a stack on the default 1 GHz platform with the given
// CPU count (single socket).
func NewStack(cpus int) *Stack {
	return &Stack{
		Model: model.Default(),
		Topo:  machine.Topology{Sockets: 1, CoresPerSocket: cpus},
		Seed:  42,
	}
}

// KNLStack returns a Xeon-Phi-KNL-like stack (Fig. 4 / Fig. 6 platform).
func KNLStack(cpus int) *Stack {
	s := NewStack(cpus)
	s.Model = model.KNL()
	return s
}

// ServerStack returns the dual-socket server stack (Fig. 7 platform).
func ServerStack() *Stack {
	return &Stack{
		Model: model.Server(),
		Topo:  machine.Topology{Sockets: 2, CoresPerSocket: 12},
		Seed:  42,
	}
}

// WithCPUs derives a stack on a single-socket topology of the given CPU
// count. Topology is part of the machine's construction-time config —
// Build sizes every per-CPU structure from it and the machine exposes it
// read-only afterwards — so sweeps derive a fresh stack per point
// instead of mutating one that has already built machines. The derived
// stack resets Shards: engine sharding is a per-run decision its driver
// makes against the new CPU count.
func (s *Stack) WithCPUs(cpus int) *Stack {
	st := *s
	st.Topo = machine.Topology{Sockets: 1, CoresPerSocket: cpus}
	st.Shards = 0
	return &st
}

// Build instantiates a fresh engine and machine for one experiment run.
func (s *Stack) Build() (sim.Sim, *machine.Machine) {
	var eng sim.Sim
	if s.Shards > 1 {
		se := sim.NewSharded(s.Shards, sim.Time(s.Model.HW.IPILatency))
		se.SetWorkers(exp.EngineWorkers(s.Parallel, s.Shards))
		eng = se
	} else {
		eng = sim.NewEngine()
	}
	m := machine.New(eng, s.Model, s.Topo, s.Seed)
	if s.ChaosSeed != 0 {
		ArmChaos(m, chaos.NewPlan(s.ChaosSeed, s.chaosConfig()))
	}
	return eng, m
}

// ArmChaos installs plan's hardware-layer injectors on m: IPI loss and
// delay on every inter-processor send, and jitter on every LAPIC timer
// expiry. Site streams are keyed by destination CPU, so the schedule a
// CPU experiences is independent of the other CPUs' traffic.
func ArmChaos(m *machine.Machine, plan *chaos.Plan) *chaos.Plan {
	ipi := plan.IPIInjector("machine/ipi")
	m.IPIFault = func(src, dst int, v machine.Vector) (bool, int64) {
		return ipi(src, dst, int(v))
	}
	tmr := plan.TimerInjector("machine/timer")
	m.TimerFault = func(cpu int, v machine.Vector, delay int64) int64 {
		return tmr(cpu, int(v), delay)
	}
	return plan
}

// us formats cycles as microseconds under the stack's clock.
func (s *Stack) us(c int64) string {
	return fmt.Sprintf("%.1fµs", s.Model.CyclesToMicros(c))
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// f2 formats with two decimals.
func f2(f float64) string { return fmt.Sprintf("%.2f", f) }

// f1 formats with one decimal.
func f1(f float64) string { return fmt.Sprintf("%.1f", f) }

// i64 formats an integer.
func i64(v int64) string { return fmt.Sprintf("%d", v) }

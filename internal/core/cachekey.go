package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/workloads"
)

// cacheSchemaVersion is folded into every key via the version salt.
// Bump it when cached value encodings or driver semantics change in a
// way the salt's structural inputs (cost tables, kernel modules,
// platform models) cannot see — stale on-disk entries then miss instead
// of serving the old results.
//
// v2: the runnable-job registry (RunConfig.Key) replaced the CLI's
// ad-hoc experiment keys, and chaos keys carry the effective (possibly
// overridden) fault config.
const cacheSchemaVersion = 2

// VersionSalt is the code-version component of every cache key: an
// FNV-1a fingerprint over the schema version, the interpreter cost
// table, the platform models, and the structure of every CARAT kernel
// module (functions, blocks, opcode streams). Editing any of those
// generators changes the salt, so results cached by an older build can
// never alias the new build's.
func VersionSalt() uint64 { return versionSalt() }

var versionSalt = sync.OnceValue(func() uint64 {
	e := cache.NewEnc()
	e.U64("schema", cacheSchemaVersion)
	e.Str("costs", fmt.Sprintf("%+v", interp.DefaultCosts()))
	e.Str("models", modelsFingerprint())
	for _, k := range workloads.CARATSuite() {
		e.Str("kernel", k.Name)
		e.Str("entry", k.Entry)
		e.U64("want", k.Want)
		e.Key("module", moduleKey(k.Build()))
	}
	return e.Fingerprint()
})

// modelsFingerprint renders every platform model the stacks build on.
// The models are plain numeric structs, so %+v is a total, canonical
// rendering.
func modelsFingerprint() string {
	return fmt.Sprintf("default=%+v knl=%+v server=%+v riscv=%+v",
		model.Default(), model.KNL(), model.Server(), model.RISCV())
}

// moduleKey canonicalizes an IR module's structure: functions in
// deterministic Functions() order, blocks in layout order, and each
// instruction's full operand set. Any compiler-side change to kernel
// generation lands here.
func moduleKey(m *ir.Module) cache.Key {
	e := cache.NewEnc()
	e.Str("module", m.Name)
	for _, f := range m.Functions() {
		e.Str("func", f.Name)
		e.Int("params", f.NumParams)
		e.Int("regs", f.NumRegs)
		for _, b := range f.Blocks {
			e.Str("block", b.Name)
			for _, in := range b.Instrs {
				e.Str("op", in.Op.String())
				e.Int("dst", int(in.Dst))
				e.Int("a", int(in.A))
				e.Int("b", int(in.B))
				e.I64("imm", in.Imm)
				e.F64("fimm", in.FImm)
				e.Int("pred", int(in.Pred))
				e.Bool("region", in.Region)
				e.Str("callee", in.Callee)
				args := make([]int, len(in.Args))
				for i, r := range in.Args {
					args[i] = int(r)
				}
				e.Ints("args", args)
				if in.Target != nil {
					e.Str("target", in.Target.Name)
				}
				if in.Else != nil {
					e.Str("else", in.Else.Name)
				}
			}
		}
	}
	return e.Sum()
}

// KeyEnc starts the canonical key for one experiment driver on this
// stack: version salt, experiment id, platform model, topology, seed,
// and — when armed — the chaos plan (seed and rate config), so
// fault-injected results never alias clean ones. Drivers append their
// config fields and Sum().
//
// Parallel and Shards are deliberately excluded: output is
// byte-identical at every pool width and on either engine (the
// package's standing guarantee, pinned by TestParallelDeterminism), so
// they are execution knobs, not result coordinates.
func (s *Stack) KeyEnc(experiment string) *cache.Enc {
	e := cache.NewEnc()
	e.U64("salt", VersionSalt())
	e.Str("experiment", experiment)
	e.Str("model", fmt.Sprintf("%+v", s.Model))
	e.Int("sockets", s.Topo.Sockets)
	e.Int("cores", s.Topo.CoresPerSocket)
	e.U64("seed", s.Seed)
	e.U64("chaos-seed", s.ChaosSeed)
	if s.ChaosSeed != 0 {
		e.Str("chaos-config", fmt.Sprintf("%+v", s.chaosConfig()))
	}
	return e
}

// cellKey derives the address of cell i of n under a driver key.
func cellKey(driver cache.Key, i, n int) cache.Key {
	e := cache.NewEnc()
	e.Key("driver", driver)
	e.Int("cell", i)
	e.Int("of", n)
	return e.Sum()
}

// encodeCell serializes one cell result for the cache. Cell result
// types are gob-encodable by construction (exported fields, no
// functions) — a type that is not is a programming error, panicking
// like any other driver fault.
func encodeCell[T any](v T) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		panic(fmt.Errorf("core: cache-encode %T: %w", v, err))
	}
	return buf.Bytes()
}

// decodeCell deserializes a cached cell result. A decode failure (an
// entry written under an encoding the salt could not distinguish) is a
// miss, never an error: the caller recomputes and overwrites.
func decodeCell[T any](b []byte) (T, bool) {
	var v T
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		var zero T
		return zero, false
	}
	return v, true
}

// cachedCell runs one cell through the stack's cache: hit returns the
// decoded bytes, miss computes (coalescing duplicate in-flight keys)
// and stores. p is the pool whose slot the calling cell holds — a
// coalesced waiter releases it while parked (see cache.Slots). driver
// names the driver for the stack's Observe events; key is the driver's
// canonical cache key.
func cachedCell[T any](s *Stack, p *exp.Pool, driver string, key cache.Key, i, n int, fn func() T) T {
	observe := func(src cache.Source) {
		if s.Observe != nil {
			s.Observe(CellEvent{Driver: driver, Cell: i, Of: n, Source: src})
		}
	}
	if s.Cache == nil || key.IsZero() {
		v := fn()
		observe(cache.SourceComputed)
		return v
	}
	ck := cellKey(key, i, n)
	buf, src, err := s.Cache.GetOrComputeCtx(s.ctx(), ck, p, true, func() ([]byte, error) {
		return encodeCell(fn()), nil
	})
	if err != nil {
		// Coalesced-leader failure or cancellation: surface it as this
		// cell's failure (runCells panics, exp converts to a *CellError).
		panic(err)
	}
	if v, ok := decodeCell[T](buf); ok {
		observe(src)
		return v
	}
	v := fn()
	s.Cache.Put(ck, encodeCell(v))
	observe(cache.SourceComputed)
	return v
}

// tablesPayload is the driver-level cache value: a whole rendered table
// set plus per-table digests checked on the way back in.
type tablesPayload struct {
	Tables  []*Table
	Digests []uint64
}

// CachedTables memoizes an entire driver invocation — the whole []*Table
// a figure or sweep produces — under key. This is the tier the CLI and
// benchdiff use: it covers every driver, including those whose work is
// not cell-structured. Each table's Digest is stored alongside and
// re-verified on a hit; a mismatch (however a stored entry decayed into
// validity) is treated as a miss and recomputed. A nil cache or zero
// key just runs gen.
func CachedTables(c *cache.Cache, key cache.Key, gen func() []*Table) []*Table {
	ts, _, err := CachedTablesCtx(context.Background(), c, key, gen)
	if err != nil {
		panic(err)
	}
	return ts
}

// CachedTablesCtx is CachedTables with caller-side cancellation and the
// serving tier reported: the registry's Runner uses it so duplicate
// concurrent jobs coalesce at the whole-driver tier too, and so a
// queued duplicate can be cancelled without disturbing the leader. The
// error is a cancellation or a coalesced-leader failure; gen itself
// still panics on driver faults (the package's discipline), which the
// caller's recover sees on the leader's goroutine.
func CachedTablesCtx(ctx context.Context, c *cache.Cache, key cache.Key, gen func() []*Table) ([]*Table, cache.Source, error) {
	if c == nil || key.IsZero() {
		return gen(), cache.SourceComputed, nil
	}
	encode := func() ([]byte, error) {
		ts := gen()
		p := tablesPayload{Tables: ts, Digests: make([]uint64, len(ts))}
		for i, t := range ts {
			p.Digests[i] = t.Digest()
		}
		return encodeCell(p), nil
	}
	buf, src, err := c.GetOrComputeCtx(ctx, key, nil, false, encode)
	if err != nil {
		return nil, src, err
	}
	if p, ok := decodeCell[tablesPayload](buf); ok && len(p.Tables) == len(p.Digests) {
		intact := true
		for i, t := range p.Tables {
			if t.Digest() != p.Digests[i] {
				intact = false
				break
			}
		}
		if intact {
			return p.Tables, src, nil
		}
	}
	ts := gen()
	p := tablesPayload{Tables: ts, Digests: make([]uint64, len(ts))}
	for i, t := range ts {
		p.Digests[i] = t.Digest()
	}
	c.Put(key, encodeCell(p))
	return ts, cache.SourceComputed, nil
}

package core

import (
	"fmt"

	"repro/internal/omp"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig6Config parameterizes the kernel-OpenMP experiment.
type Fig6Config struct {
	CPUCounts []int
	Kernels   []workloads.NASKernel
	// Steps overrides kernel steps (0 = keep) so the CLI can trade
	// precision for speed.
	Steps int
}

// DefaultFig6Config matches the paper's Fig. 6: NAS BT and SP across CPU
// scales on KNL.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		CPUCounts: []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		Kernels:   []workloads.NASKernel{workloads.BT(), workloads.SP()},
		Steps:     6,
	}
}

// Fig6 regenerates Figure 6: RTK (and PIK, CCK) performance relative to
// Linux OpenMP as a function of CPUs used, for NAS BT and SP on the
// KNL-like platform. Values > 1.0 beat the Linux baseline.
func (s *Stack) Fig6(cfg Fig6Config) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Kernel OpenMP performance relative to Linux (KNL-like)",
		Header: []string{"kernel", "CPUs", "linux (Mcyc)", "RTK", "PIK", "CCK"},
	}
	type cell struct {
		k    workloads.NASKernel
		cpus int
	}
	var cs []cell
	for _, k := range cfg.Kernels {
		if cfg.Steps > 0 {
			k.Steps = cfg.Steps
		}
		for _, cpus := range cfg.CPUCounts {
			cs = append(cs, cell{k, cpus})
		}
	}
	// Cell results cross the cache (gob), so fields are exported.
	type res struct {
		Base             int64
		RRTK, RPIK, RCCK float64
	}
	var rtkRatios, pikRatios []float64
	e := s.KeyEnc("fig6")
	for _, c := range cs {
		// NASKernel is a plain numeric struct (no functions), so %+v is
		// a total canonical rendering of the post-override workload.
		e.Str("kernel", fmt.Sprintf("%+v", c.k))
		e.Int("cpus", c.cpus)
	}
	// One cell per (kernel, CPU count): the four runtime modes run on
	// the cell's own machines.
	results := runCells(s, "fig6", e.Sum(), len(cs), func(i int) res {
		c := cs[i]
		base := s.ompRun(omp.ModeLinux, c.cpus, c.k)
		rtk := s.ompRun(omp.ModeRTK, c.cpus, c.k)
		pik := s.ompRun(omp.ModePIK, c.cpus, c.k)
		cck := s.ompRun(omp.ModeCCK, c.cpus, c.k)
		return res{
			Base: base,
			RRTK: float64(base) / float64(rtk),
			RPIK: float64(base) / float64(pik),
			RCCK: float64(base) / float64(cck),
		}
	})
	for i, r := range results {
		if cs[i].cpus > 1 {
			rtkRatios = append(rtkRatios, r.RRTK)
			pikRatios = append(pikRatios, r.RPIK)
		}
		t.AddRow(cs[i].k.Name, i64(int64(cs[i].cpus)), f1(float64(r.Base)/1e6),
			f2(r.RRTK), f2(r.RPIK), f2(r.RCCK))
	}
	t.AddNote("RTK geomean gain %s, PIK geomean gain %s (paper: ~22%% RTK geomean on KNL; PIK performs similarly; CCK not easily summarized)",
		pct(stats.GeoMean(rtkRatios)-1), pct(stats.GeoMean(pikRatios)-1))
	return t
}

// EPCC regenerates the EPCC-style synchronization microbenchmark
// comparison: per-region overhead cycles by mode.
func (s *Stack) EPCC(cpus int) *Table {
	t := &Table{
		ID:     "epcc",
		Title:  fmt.Sprintf("EPCC-style sync overhead per region, %d CPUs (cycles)", cpus),
		Header: []string{"benchmark", "linux", "rtk", "pik", "cck"},
	}
	for _, b := range workloads.EPCC() {
		row := []string{b.Name}
		for _, mode := range []omp.Mode{omp.ModeLinux, omp.ModeRTK, omp.ModePIK, omp.ModeCCK} {
			st := s.WithCPUs(cpus)
			_, m := st.Build()
			rt := omp.New(m, mode, s.Seed)
			row = append(row, f1(rt.RunEPCC(b)))
		}
		t.AddRow(row...)
	}
	t.AddNote("all three kernel paths run the full Edinburgh OpenMP microbenchmarks in the paper; the kernel primitives cut the empty-region overhead")
	return t
}

func (s *Stack) ompRun(mode omp.Mode, cpus int, k workloads.NASKernel) int64 {
	st := s.WithCPUs(cpus)
	_, m := st.Build()
	rt := omp.New(m, mode, s.Seed)
	return rt.RunKernel(k)
}

// Schedules regenerates the EPCC scheduling-benchmark dimension: loop
// schedules (static/dynamic/guided) under uniform and imbalanced
// iteration costs, on the Linux and RTK runtimes.
func (s *Stack) Schedules(cpus int) *Table {
	t := &Table{
		ID:     "schedules",
		Title:  fmt.Sprintf("Loop schedules, %d CPUs (completion, Kcyc)", cpus),
		Header: []string{"workload", "runtime", "static", "dynamic", "guided"},
	}
	const items = 16_384
	uniform := omp.UniformCost(50)
	tri := omp.TriangularCost(10, 1, 4)
	for _, w := range []struct {
		name string
		cost func(int64) int64
	}{{"uniform", uniform}, {"triangular", tri}} {
		for _, mode := range []omp.Mode{omp.ModeLinux, omp.ModeRTK} {
			row := []string{w.name, mode.String()}
			for _, sched := range []omp.Schedule{omp.SchedStatic, omp.SchedDynamic, omp.SchedGuided} {
				st := s.WithCPUs(cpus)
				_, m := st.Build()
				rt := omp.New(m, mode, s.Seed)
				row = append(row, f1(float64(rt.RunLoop(items, w.cost, sched, 16))/1e3))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("static wins on uniform loops (no dispensing); dynamic/guided win under imbalance; the kernel runtime cheapens dynamic dispensing")
	return t
}

// TaskGranularity regenerates the fine-grain tasking argument (§IV-C /
// granular computing [51]): at small task sizes, per-task dispatch
// overhead decides viability, and the kernel paths push the viable
// granularity far below user-level Linux.
func (s *Stack) TaskGranularity(cpus int) *Table {
	t := &Table{
		ID:     "tasks",
		Title:  fmt.Sprintf("Fine-grain task viability, %d CPUs (fib task DAG)", cpus),
		Header: []string{"leaf cycles", "mode", "makespan (Kcyc)", "overhead/work"},
	}
	for _, leaf := range []int64{100, 1_000, 10_000} {
		nodes := omp.FibTaskGraph(14, leaf, leaf/4+10)
		var work int64
		for _, n := range nodes {
			work += n.Cycles
		}
		for _, mode := range []omp.Mode{omp.ModeLinux, omp.ModeRTK, omp.ModeCCK} {
			st := s.WithCPUs(cpus)
			_, m := st.Build()
			rt := omp.New(m, mode, s.Seed)
			mk, gst := rt.RunTaskGraph(nodes)
			t.AddRow(i64(leaf), mode.String(), f1(float64(mk)/1e3),
				f2(float64(gst.OverheadCycles)/float64(work)))
		}
	}
	t.AddNote("overhead/work > 1 means dispatch costs exceed the computation itself — the granularity wall the interwoven paths push back")
	return t
}

package core

import (
	"repro/internal/linux"
	"repro/internal/nautilus"
)

// fig4Bar is one bar of Figure 4's parameter space.
type fig4Bar struct {
	label  string
	timing nautilus.TimingMode
	class  nautilus.Class
	opts   nautilus.ThreadOpts
}

// Fig4 regenerates Figure 4: context-switch cost across
// {RT, non-RT} x {Threads, Fibers} x {Cooperative, Compiler-timed} x
// {FP, no FP} on the KNL-like platform, with the Linux thread switch as
// the reference. Costs are *measured* by running a ping-pong workload on
// the simulated kernel, not just read from the model.
func (s *Stack) Fig4() *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Context switch cost on Phi-KNL-like platform (cycles)",
		Header: []string{"configuration", "cycles/switch", "vs linux FP"},
	}
	_, m := s.Build()
	lx := linux.New(m, s.Seed)
	linuxFP := lx.ContextSwitchCost(true)
	linuxNoFP := lx.ContextSwitchCost(false)
	t.AddRow("linux thread (non-RT, FP)", i64(linuxFP), "1.00x")
	t.AddRow("linux thread (non-RT, no FP)", i64(linuxNoFP), f2(float64(linuxFP)/float64(linuxNoFP))+"x")

	bars := []fig4Bar{
		{"threads (non-RT, FP)", nautilus.TimingHWTimer, nautilus.ClassThread, nautilus.ThreadOpts{FP: true}},
		{"threads (non-RT, no FP)", nautilus.TimingHWTimer, nautilus.ClassThread, nautilus.ThreadOpts{}},
		{"threads (RT, FP)", nautilus.TimingHWTimer, nautilus.ClassThread, nautilus.ThreadOpts{RT: true, FP: true}},
		{"fibers-coop (no FP)", nautilus.TimingCooperative, nautilus.ClassFiber, nautilus.ThreadOpts{}},
		{"fibers-coop (FP)", nautilus.TimingCooperative, nautilus.ClassFiber, nautilus.ThreadOpts{FP: true}},
		{"fibers-comptime (no FP)", nautilus.TimingCompiler, nautilus.ClassFiber, nautilus.ThreadOpts{}},
		{"fibers-comptime (FP)", nautilus.TimingCompiler, nautilus.ClassFiber, nautilus.ThreadOpts{FP: true}},
	}
	for _, bar := range bars {
		c := s.measureSwitch(bar)
		t.AddRow("nautilus "+bar.label, i64(c), f2(float64(linuxFP)/float64(c))+"x")
	}
	t.AddNote("paper: Linux ≈5000; Nautilus threads ≈ half; compiler-timed fibers slightly more than halved again (4x lower no-FP, 2.3x lower FP); granularity limit < 600 cycles")
	return t
}

// measureSwitch runs a two-thread ping-pong on one CPU and extracts the
// per-switch cost: (elapsed - pure compute) / switches.
func (s *Stack) measureSwitch(bar fig4Bar) int64 {
	st := s.WithCPUs(1)
	eng, m := st.Build()
	cfg := nautilus.Config{
		Timing: bar.timing,
		// Quantum chosen so compiler-timed switching fires every check.
		QuantumCycles:       1000,
		CheckIntervalCycles: 1000,
	}
	k := nautilus.New(m, cfg)
	defer k.Shutdown()

	const iters = 200
	const compute = 1000
	body := func(tc *nautilus.ThreadCtx) {
		for i := 0; i < iters; i++ {
			tc.Compute(compute)
			if bar.timing != nautilus.TimingCompiler {
				tc.Yield()
			}
		}
	}
	k.Spawn(0, bar.class, bar.opts, body)
	k.Spawn(0, bar.class, bar.opts, body)
	start := eng.Now()
	eng.Run()
	elapsed := eng.Now().Sub(start)
	pure := int64(2 * iters * compute)
	over := elapsed - pure
	switches := k.Switches
	if bar.timing == nautilus.TimingCompiler {
		// Subtract the distributed check cost: it is preemption-
		// granularity overhead, not switch cost.
		over -= k.CheckCycleSum
	}
	if switches == 0 {
		return 0
	}
	return over / switches
}

// GranularityLimit returns the minimum preemption granularity (cycles)
// each configuration supports at the given overhead budget — the basis
// of the paper's "<600 cycles" claim for compiler-timed fibers.
func (s *Stack) GranularityLimit(budget float64) *Table {
	t := &Table{
		ID:     "fig4-granularity",
		Title:  "Preemption granularity floor at 50% overhead budget",
		Header: []string{"configuration", "switch cycles", "granularity floor"},
	}
	if budget <= 0 {
		budget = 0.5
	}
	bars := []fig4Bar{
		{"linux thread (FP)", nautilus.TimingHWTimer, nautilus.ClassThread, nautilus.ThreadOpts{FP: true}},
		{"nautilus threads (non-RT, FP)", nautilus.TimingHWTimer, nautilus.ClassThread, nautilus.ThreadOpts{FP: true}},
		{"nautilus fibers-comptime (no FP)", nautilus.TimingCompiler, nautilus.ClassFiber, nautilus.ThreadOpts{}},
	}
	for i, bar := range bars {
		var c int64
		if i == 0 {
			_, m := s.Build()
			c = linux.New(m, s.Seed).ContextSwitchCost(true)
		} else {
			c = s.measureSwitch(bar)
		}
		floor := int64(float64(c) / budget)
		t.AddRow(bar.label, i64(c), i64(floor))
	}
	t.AddNote("a switch cost of C supports preemption every C/budget cycles; compiler-timed fibers reach sub-600-cycle switch costs without FP state")
	return t
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/heartbeat"
)

// heartbeatDigest reduces a finished heartbeat run to a canonical string
// of everything the figures observe: completion time and every worker's
// item, promotion, steal, and beat record. Two runs that produce equal
// digests are indistinguishable to every Fig 3 metric.
func heartbeatDigest(rt *heartbeat.Runtime) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "done=%d\n", rt.DoneAt())
	for i := 0; i < rt.NumWorkers(); i++ {
		ws := rt.WorkerStats(i)
		fmt.Fprintf(&sb, "w%d items=%d work=%d promo=%d steals=%d/%d polls=%d beats=%v\n",
			i, ws.Items, ws.WorkCycles, ws.Promotions, ws.StealHits, ws.StealAttempts,
			ws.PollCycles, ws.Beats)
	}
	return sb.String()
}

// TestHeartbeatDomainOracle is the stack-level equivalence oracle for
// the sharded engine: the Fig 3 heartbeat workload in steal-domain mode
// produces byte-identical per-worker traces whether the machine is
// built on the sequential engine (Shards pinned to 1) or the sharded
// engine (one shard per domain) — across every substrate, with and
// without an armed chaos plan.
func TestHeartbeatDomainOracle(t *testing.T) {
	t.Parallel()
	subs := []heartbeat.Substrate{
		heartbeat.SubstrateNautilusIPI,
		heartbeat.SubstrateLinuxSignals,
		heartbeat.SubstrateLinuxPolling,
	}
	for _, sub := range subs {
		for _, chaosSeed := range []uint64{0, 99} {
			run := func(shards int) string {
				s := NewStack(16)
				s.ChaosSeed = chaosSeed
				s.Shards = shards
				cfg := DefaultFig3Config()
				cfg.Items = 150_000
				cfg.Domains = 4
				rt := s.heartbeatRun(cfg, sub, s.Model.MicrosToCycles(20))
				return heartbeatDigest(rt)
			}
			seq := run(1)
			sharded := run(0)
			if seq != sharded {
				t.Fatalf("%v chaos=%d: sharded run diverges from sequential oracle\nsequential:\n%.600s\nsharded:\n%.600s",
					sub, chaosSeed, seq, sharded)
			}
		}
	}
}

// TestFig3TableDomainOracle checks the same equivalence one level up:
// the rendered Fig 3 table JSON is byte-identical between engines when
// the sweep runs in domain mode.
func TestFig3TableDomainOracle(t *testing.T) {
	t.Parallel()
	run := func(shards int) string {
		s := NewStack(16)
		s.Shards = shards
		cfg := DefaultFig3Config()
		cfg.Items = 150_000
		cfg.Domains = 4
		return s.Fig3(cfg).JSON()
	}
	if seq, sharded := run(1), run(0); seq != sharded {
		t.Fatalf("fig3 table diverges between engines:\n%s\nvs\n%s", seq, sharded)
	}
}

package core

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// memStatsResult is one kernel's heap-allocator accounting. Fields are
// exported: cell results cross the cache (gob).
type memStatsResult struct {
	Name string
	St   mem.BuddyStats
}

// MemStats surfaces the allocator fast path's counters for experiments
// that run a heap: per CARAT kernel, the interpreter heap's buddy
// statistics (allocs, frees, splits, coalesces, peak usage), plus a
// deterministic magazine-front-end demonstration showing the per-CPU
// cache hit rate under a churn workload. Behind the -memstats flag; not
// part of `interweave all` output.
func (s *Stack) MemStats() *Table {
	t := &Table{
		ID:     "memstats",
		Title:  "Allocator statistics: per-kernel heap buddy counters + magazine front-end",
		Header: []string{"kernel", "allocs", "frees", "splits", "coalesces", "peak used (KiB)", "failed", "live"},
	}
	suite := workloads.CARATSuite()
	e := s.KeyEnc("memstats")
	for _, k := range suite {
		e.Str("kernel", k.Name)
	}
	for _, r := range runCells(s, "memstats", e.Sum(), len(suite), func(i int) memStatsResult {
		return memStatsKernel(suite[i])
	}) {
		t.AddRow(r.Name, i64(int64(r.St.Allocs)), i64(int64(r.St.Frees)),
			i64(int64(r.St.Splits)), i64(int64(r.St.Coalesces)),
			i64(int64(r.St.PeakUsed)/1024), i64(int64(r.St.FailedAllocs)),
			i64(int64(r.St.Live)))
	}

	// Magazine demonstration: 8 simulated CPUs churn one shared zone
	// through the per-CPU cache, round-robin so the result is
	// deterministic at any host parallelism.
	cacheStats, zoneStats := magazineDemo(s.Seed)
	t.AddRow("magazine demo", i64(int64(cacheStats.Allocs)), i64(int64(cacheStats.Frees)),
		i64(int64(zoneStats.Splits)), i64(int64(zoneStats.Coalesces)),
		i64(int64(zoneStats.PeakUsed)/1024), i64(int64(zoneStats.FailedAllocs)),
		i64(int64(zoneStats.Live)))
	t.AddNote("kernel rows: the interpreter heap's intrusive buddy allocator (zero map ops, zero heap allocs steady-state)")
	t.AddNote(fmt.Sprintf("magazine demo: 8 simulated CPUs churning one zone through per-CPU magazines; "+
		"%.1f%%%% of allocations never touch the shared zone lock", cacheStats.HitRate()*100))
	return t
}

// memStatsKernel runs one kernel uninstrumented and snapshots its heap
// allocator counters.
func memStatsKernel(k workloads.IRKernel) memStatsResult {
	ip, err := interp.New(k.Build())
	if err != nil {
		panic(err)
	}
	if _, err := ip.Call(k.Entry); err != nil {
		panic(err)
	}
	return memStatsResult{Name: k.Name, St: ip.Heap.Buddy.Stats()}
}

// magazineDemo drives a deterministic churn workload through a CPUCache
// from 8 simulated CPUs (round-robin, single host thread) and returns
// the aggregate cache and zone counters.
func magazineDemo(seed uint64) (mem.CPUCacheStats, mem.BuddyStats) {
	const cpus = 8
	zone, err := mem.NewBuddy(0, 16<<20, 6)
	if err != nil {
		panic(err)
	}
	cache, err := mem.NewCPUCache(zone, cpus, 0)
	if err != nil {
		panic(err)
	}
	rngs := make([]*sim.RNG, cpus)
	held := make([][]mem.Addr, cpus)
	for c := 0; c < cpus; c++ {
		rngs[c] = sim.NewRNG(seed + uint64(c)*911)
	}
	sizes := [...]uint64{64, 256, 1024, 4096}
	for round := 0; round < 2000; round++ {
		for c := 0; c < cpus; c++ {
			if rngs[c].Intn(2) == 0 || len(held[c]) == 0 {
				a, err := cache.AllocOn(c, sizes[rngs[c].Intn(len(sizes))])
				if err != nil {
					panic(err)
				}
				held[c] = append(held[c], a)
			} else {
				i := rngs[c].Intn(len(held[c]))
				if err := cache.FreeOn(c, held[c][i]); err != nil {
					panic(err)
				}
				held[c][i] = held[c][len(held[c])-1]
				held[c] = held[c][:len(held[c])-1]
			}
		}
	}
	for c := 0; c < cpus; c++ {
		for _, a := range held[c] {
			if err := cache.FreeOn(c, a); err != nil {
				panic(err)
			}
		}
	}
	if err := cache.Drain(); err != nil {
		panic(err)
	}
	if err := zone.CheckInvariants(); err != nil {
		panic(err)
	}
	return cache.Stats(), zone.Stats()
}

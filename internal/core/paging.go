package core

import (
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// Paging regenerates the paper's §I motivating limitation: "current
// hardware/software stacks for parallelism require virtual memory in the
// form of paging, which then demands the existence of TLBs ... these in
// turn have substantial overheads in time and energy". It runs the CARAT
// kernel suite under three translation regimes:
//
//   - demand 4K paging (the commodity stack): TLB misses + page faults;
//   - identity-mapped large pages (Nautilus, §III): misses vanish once
//     the TLB reach covers the footprint;
//   - no translation at all (CARAT, §IV-A): physical addresses, zero
//     hardware translation cost — protection comes from the compiler.
func (s *Stack) Paging() *Table {
	t := &Table{
		ID:     "paging",
		Title:  "Address translation overhead by regime",
		Header: []string{"kernel", "4K demand ovh", "identity-large ovh", "CARAT (none) ovh", "4K TLB miss rate"},
	}
	for _, k := range workloads.CARATSuite() {
		base := s.pagingRun(k, nil)
		demand := mem.NewPagingCost(mem.PagingDemand4K, mem.NewTLB(16, 4, 12),
			s.Model.HW.TLBMiss, 4000)
		d := s.pagingRun(k, demand)
		ident := mem.NewPagingCost(mem.PagingIdentityLarge, mem.NewTLB(16, 4, 30),
			s.Model.HW.TLBMiss, 0)
		ide := s.pagingRun(k, ident)
		none := mem.NewPagingCost(mem.PagingNone, nil, 0, 0)
		n := s.pagingRun(k, none)

		ovh := func(c int64) float64 { return float64(c-base) / float64(base) }
		t.AddRow(k.Name, pct(ovh(d)), pct(ovh(ide)), pct(ovh(n)),
			pct(demand.TLB.MissRate()))
	}
	t.AddNote("identity-mapped large pages make TLB misses vanish after warm-up (§III); CARAT removes translation hardware entirely (§IV-A)")
	return t
}

// pagingRun executes a kernel with the given translation model attached
// to every memory access, returning total cycles.
func (s *Stack) pagingRun(k workloads.IRKernel, pc *mem.PagingCost) int64 {
	m := k.Build()
	ip, err := interp.New(m)
	if err != nil {
		panic(err)
	}
	if pc != nil {
		ip.Hooks.MemAccess = func(a mem.Addr, write bool) int64 {
			return pc.Access(a)
		}
	}
	if _, err := ip.Call(k.Entry); err != nil {
		panic(err)
	}
	return ip.Stats.Cycles
}

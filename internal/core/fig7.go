package core

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig7 regenerates Figure 7: speedup from selective coherence
// deactivation for each PBBS-style benchmark on the dual-socket server
// platform, plus the interconnect energy reduction the paper reports in
// the text (~53%).
func (s *Stack) Fig7() *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Selective coherence deactivation (2 x 12-core server)",
		Header: []string{"benchmark", "speedup", "energy reduction", "deactivated accesses"},
	}
	var speedups, energySavings []float64
	for _, b := range workloads.PBBS() {
		base := s.coherenceRun(b, false, 0)
		fast := s.coherenceRun(b, true, 0)
		sp := float64(base.Stats.SumCycles()) / float64(fast.Stats.SumCycles())
		es := 1 - fast.Stats.InterconnectPJ/base.Stats.InterconnectPJ
		speedups = append(speedups, sp)
		energySavings = append(energySavings, es)
		frac := float64(fast.Stats.DeactivatedAcc) / float64(fast.Stats.Accesses)
		t.AddRow(b.Name, f2(sp), pct(es), pct(frac))
	}
	t.AddRow("average", f2(stats.Mean(speedups)), pct(stats.Mean(energySavings)), "")
	t.AddNote("paper: average speedup ~46%%, interconnect energy reduced ~53%% (scenario of Fig. 7)")
	return t
}

// Fig7Sweep regenerates the §V-B scale claim: "the benefits grow with
// scale and disaggregation" — speedup as a function of core count and of
// cross-socket (disaggregation-like) latency.
func (s *Stack) Fig7Sweep() *Table {
	t := &Table{
		ID:     "fig7-sweep",
		Title:  "Deactivation benefit vs scale and disaggregation",
		Header: []string{"cores", "remote-latency x", "avg speedup", "avg energy reduction"},
	}
	for _, cores := range []int{8, 16, 24, 48} {
		for _, latX := range []int64{1, 4} {
			var sps, ens []float64
			for _, b := range workloads.PBBS() {
				base := s.coherenceRunScaled(b, false, cores, latX)
				fast := s.coherenceRunScaled(b, true, cores, latX)
				sps = append(sps, float64(base.Stats.SumCycles())/float64(fast.Stats.SumCycles()))
				ens = append(ens, 1-fast.Stats.InterconnectPJ/base.Stats.InterconnectPJ)
			}
			t.AddRow(i64(int64(cores)), fmt.Sprintf("%dx", latX),
				f2(stats.Mean(sps)), pct(stats.Mean(ens)))
		}
	}
	t.AddNote("higher remote latency models disaggregated memory; deactivation's benefit grows with both scale and distance")
	return t
}

// AblationSharingClasses isolates each sharing class's contribution by
// enabling deactivation for one class at a time (histogram benchmark).
func (s *Stack) AblationSharingClasses() *Table {
	t := &Table{
		ID:     "fig7-ablation",
		Title:  "Per-class contribution to deactivation benefit (histogram)",
		Header: []string{"classes deactivated", "speedup", "energy reduction"},
	}
	b := workloads.PBBS()[0] // histogram
	base := s.coherenceRun(b, false, 0)
	full := s.coherenceRun(b, true, 0)
	t.AddRow("all", f2(float64(base.Stats.SumCycles())/float64(full.Stats.SumCycles())),
		pct(1-full.Stats.InterconnectPJ/base.Stats.InterconnectPJ))
	// The per-class ablation reuses the same trace but reclassifies
	// regions: handled by filtering inside a custom run below.
	for _, keep := range []coherence.SharingClass{
		coherence.ClassPrivate, coherence.ClassReadOnly, coherence.ClassProducerConsumer,
	} {
		sys := s.newCoherenceSystem(true, 0, 0)
		sys.FilterClass = keep
		b.Run(sys, b.Scale, s.Seed)
		sp := float64(base.Stats.SumCycles()) / float64(sys.Stats.SumCycles())
		es := 1 - sys.Stats.InterconnectPJ/base.Stats.InterconnectPJ
		t.AddRow("only "+keep.String(), f2(sp), pct(es))
	}
	return t
}

// newCoherenceSystem builds the Fig. 7 memory system. cores == 0 keeps
// the stack topology; latX scales the cross-socket latency (the
// disaggregation knob).
func (s *Stack) newCoherenceSystem(deact bool, cores int, latX int64) *coherence.System {
	cfg := coherence.DefaultConfig()
	cfg.Sockets = s.Topo.Sockets
	cfg.CoresPerSocket = s.Topo.CoresPerSocket
	if cores > 0 {
		cfg.Sockets = 2
		cfg.CoresPerSocket = cores / 2
		if cfg.CoresPerSocket == 0 {
			cfg.Sockets = 1
			cfg.CoresPerSocket = cores
		}
	}
	cfg.Deactivation = deact
	cfg.Costs = s.Model.Coherence
	if latX > 1 {
		cfg.Costs.RemoteSocket *= latX
	}
	return coherence.New(cfg)
}

func (s *Stack) coherenceRun(b workloads.PBBSBench, deact bool, latX int64) *coherence.System {
	sys := s.newCoherenceSystem(deact, 0, latX)
	b.Run(sys, b.Scale, s.Seed)
	return sys
}

func (s *Stack) coherenceRunScaled(b workloads.PBBSBench, deact bool, cores int, latX int64) *coherence.System {
	sys := s.newCoherenceSystem(deact, cores, latX)
	b.Run(sys, b.Scale, s.Seed)
	return sys
}

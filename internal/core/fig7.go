package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig7 regenerates Figure 7: speedup from selective coherence
// deactivation for each PBBS-style benchmark on the dual-socket server
// platform, plus the interconnect energy reduction the paper reports in
// the text (~53%).
func (s *Stack) Fig7() *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Selective coherence deactivation (2 x 12-core server)",
		Header: []string{"benchmark", "speedup", "energy reduction", "deactivated accesses"},
	}
	benches := workloads.PBBS()
	// Cell results cross the cache (gob), so fields are exported.
	type res struct {
		Sp, Es, Frac float64
	}
	var speedups, energySavings []float64
	e := s.KeyEnc("fig7")
	encPBBS(e, benches)
	results := runCells(s, "fig7", e.Sum(), len(benches), func(i int) res {
		base := s.coherenceRun(benches[i], false, 0)
		fast := s.coherenceRun(benches[i], true, 0)
		return res{
			Sp:   float64(base.Stats.SumCycles()) / float64(fast.Stats.SumCycles()),
			Es:   1 - fast.Stats.InterconnectPJ/base.Stats.InterconnectPJ,
			Frac: float64(fast.Stats.DeactivatedAcc) / float64(fast.Stats.Accesses),
		}
	})
	for i, r := range results {
		speedups = append(speedups, r.Sp)
		energySavings = append(energySavings, r.Es)
		t.AddRow(benches[i].Name, f2(r.Sp), pct(r.Es), pct(r.Frac))
	}
	t.AddRow("average", f2(stats.Mean(speedups)), pct(stats.Mean(energySavings)), "")
	t.AddNote("paper: average speedup ~46%%, interconnect energy reduced ~53%% (scenario of Fig. 7)")
	return t
}

// DefaultFig7SweepCores is Fig7Sweep's core-count axis: the paper's
// server-scale points plus the 256–1024 range matching the sharded
// machine's reach. The top two points dominate the sweep's runtime.
var DefaultFig7SweepCores = []int{8, 16, 24, 48, 256, 1024}

// Fig7Sweep regenerates the §V-B scale claim: "the benefits grow with
// scale and disaggregation" — speedup as a function of core count and of
// cross-socket (disaggregation-like) latency.
func (s *Stack) Fig7Sweep() *Table {
	return s.Fig7SweepCores(DefaultFig7SweepCores)
}

// Fig7SweepCores is Fig7Sweep on an explicit core-count axis, so tests
// and quick runs can drop the expensive large-N points.
func (s *Stack) Fig7SweepCores(coreCounts []int) *Table {
	t := &Table{
		ID:     "fig7-sweep",
		Title:  "Deactivation benefit vs scale and disaggregation",
		Header: []string{"cores", "remote-latency x", "avg speedup", "avg energy reduction"},
	}
	latencies := []int64{1, 4}
	benches := workloads.PBBS()
	type point struct {
		Sp, En float64
	}
	e := s.KeyEnc("fig7-sweep")
	e.Ints("core-counts", coreCounts)
	for _, l := range latencies {
		e.I64("latency-x", l)
	}
	encPBBS(e, benches)
	// One cell per (cores, latency, benchmark) triple — the sweep's full
	// cross product runs concurrently and is averaged in canonical order.
	nPer := len(benches)
	nCfg := len(coreCounts) * len(latencies)
	pts := runCells(s, "fig7-sweep", e.Sum(), nCfg*nPer, func(i int) point {
		cfgIdx, b := i/nPer, benches[i%nPer]
		cores := coreCounts[cfgIdx/len(latencies)]
		latX := latencies[cfgIdx%len(latencies)]
		base := s.coherenceRunScaled(b, false, cores, latX)
		fast := s.coherenceRunScaled(b, true, cores, latX)
		return point{
			Sp: float64(base.Stats.SumCycles()) / float64(fast.Stats.SumCycles()),
			En: 1 - fast.Stats.InterconnectPJ/base.Stats.InterconnectPJ,
		}
	})
	for cfgIdx := 0; cfgIdx < nCfg; cfgIdx++ {
		var sps, ens []float64
		for _, p := range pts[cfgIdx*nPer : (cfgIdx+1)*nPer] {
			sps = append(sps, p.Sp)
			ens = append(ens, p.En)
		}
		t.AddRow(i64(int64(coreCounts[cfgIdx/len(latencies)])),
			fmt.Sprintf("%dx", latencies[cfgIdx%len(latencies)]),
			f2(stats.Mean(sps)), pct(stats.Mean(ens)))
	}
	t.AddNote("higher remote latency models disaggregated memory; deactivation's benefit grows with both scale and distance")
	return t
}

// AblationSharingClasses isolates each sharing class's contribution by
// enabling deactivation for one class at a time (histogram benchmark).
func (s *Stack) AblationSharingClasses() *Table {
	t := &Table{
		ID:     "fig7-ablation",
		Title:  "Per-class contribution to deactivation benefit (histogram)",
		Header: []string{"classes deactivated", "speedup", "energy reduction"},
	}
	b := workloads.PBBS()[0] // histogram
	classes := []coherence.SharingClass{
		coherence.ClassPrivate, coherence.ClassReadOnly, coherence.ClassProducerConsumer,
	}
	// Cell results cross the cache, so cells return the two metrics the
	// rows need (gob-encodable) rather than the whole *coherence.System.
	type ablationMetrics struct {
		Cycles         int64
		InterconnectPJ float64
	}
	e := s.KeyEnc("fig7-ablation")
	encPBBS(e, []workloads.PBBSBench{b})
	for _, c := range classes {
		e.Str("class", c.String())
	}
	// Cells: baseline, full deactivation, then one per kept class. The
	// per-class ablation reuses the same trace but reclassifies regions,
	// handled by filtering inside each run.
	systems := runCells(s, "fig7-ablation", e.Sum(), 2+len(classes), func(i int) ablationMetrics {
		var sys *coherence.System
		switch i {
		case 0:
			sys = s.coherenceRun(b, false, 0)
		case 1:
			sys = s.coherenceRun(b, true, 0)
		default:
			sys = s.newCoherenceSystem(true, 0, 0)
			sys.FilterClass = classes[i-2]
			b.Run(sys, b.Scale, s.Seed)
		}
		return ablationMetrics{Cycles: sys.Stats.SumCycles(), InterconnectPJ: sys.Stats.InterconnectPJ}
	})
	base := systems[0]
	for i, sys := range systems[1:] {
		label := "all"
		if i > 0 {
			label = "only " + classes[i-1].String()
		}
		t.AddRow(label, f2(float64(base.Cycles)/float64(sys.Cycles)),
			pct(1-sys.InterconnectPJ/base.InterconnectPJ))
	}
	return t
}

// encPBBS appends the identifying fields of PBBS benchmarks to a key.
// The Run function is code, covered by the schema version, never
// rendered (a func value has no canonical form).
func encPBBS(e *cache.Enc, benches []workloads.PBBSBench) {
	for _, b := range benches {
		e.Str("bench", b.Name)
		e.Int("scale", b.Scale)
	}
}

// newCoherenceSystem builds the Fig. 7 memory system. cores == 0 keeps
// the stack topology; latX scales the cross-socket latency (the
// disaggregation knob).
func (s *Stack) newCoherenceSystem(deact bool, cores int, latX int64) *coherence.System {
	cfg := coherence.DefaultConfig()
	cfg.Sockets = s.Topo.Sockets
	cfg.CoresPerSocket = s.Topo.CoresPerSocket
	if cores > 0 {
		cfg.Sockets = 2
		cfg.CoresPerSocket = cores / 2
		if cfg.CoresPerSocket == 0 {
			cfg.Sockets = 1
			cfg.CoresPerSocket = cores
		}
	}
	cfg.Deactivation = deact
	cfg.Costs = s.Model.Coherence
	if latX > 1 {
		cfg.Costs.RemoteSocket *= latX
	}
	return coherence.New(cfg)
}

func (s *Stack) coherenceRun(b workloads.PBBSBench, deact bool, latX int64) *coherence.System {
	sys := s.newCoherenceSystem(deact, 0, latX)
	b.Run(sys, b.Scale, s.Seed)
	return sys
}

func (s *Stack) coherenceRunScaled(b workloads.PBBSBench, deact bool, cores int, latX int64) *coherence.System {
	sys := s.newCoherenceSystem(deact, cores, latX)
	b.Run(sys, b.Scale, s.Seed)
	return sys
}

package pik

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/mem"
)

var testKey = []byte("platform-attestation-key")

// goodProgram: allocates, fills, sums its own array — a well-behaved
// "user program".
func goodProgram() *ir.Module {
	m := ir.NewModule("good")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	eight := b.Const(8)
	arr := b.Alloc(256 * 8)
	b.CountingLoop(0, 256, 1, func(i ir.Reg) {
		b.Store(b.Add(arr, b.Mul(i, eight)), 0, i)
	})
	sum := b.Const(0)
	b.CountingLoop(0, 256, 1, func(i ir.Reg) {
		b.MovTo(sum, b.Add(sum, b.Load(b.Add(arr, b.Mul(i, eight)), 0)))
	})
	b.Free(arr)
	b.Ret(sum)
	return m
}

// wildProgram reads far outside any allocation it owns.
func wildProgram() *ir.Module {
	m := ir.NewModule("wild")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	own := b.Alloc(64)
	_ = b.Load(own, 0) // fine
	foreign := b.Const(0x3000_0000)
	v := b.Load(foreign, 0) // protection fault
	b.Ret(v)
	return m
}

func TestEncodeDeterministicAndSensitive(t *testing.T) {
	a := Encode(goodProgram())
	b := Encode(goodProgram())
	if string(a) != string(b) {
		t.Fatal("encoding not deterministic")
	}
	m := goodProgram()
	m.Funcs["main"].Blocks[0].Instrs[0].Imm++ // tamper one constant
	if string(Encode(m)) == string(a) {
		t.Fatal("encoding insensitive to tampering")
	}
}

func TestBuildVerifyLoadRun(t *testing.T) {
	img, err := BuildImage(goodProgram(), testKey)
	if err != nil {
		t.Fatal(err)
	}
	if img.GuardsInjected == 0 || img.GuardsHoisted == 0 {
		t.Fatalf("compile pipeline did nothing: %+v", img)
	}
	if !Verify(img, testKey) {
		t.Fatal("fresh image fails verification")
	}
	k, err := NewKernel(testKey)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Load("good", img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 256*255/2 {
		t.Fatalf("result = %d", got)
	}
	if p.Faults != 0 {
		t.Fatalf("faults = %d", p.Faults)
	}
}

func TestTamperedImageRejected(t *testing.T) {
	img, _ := BuildImage(goodProgram(), testKey)
	// Tamper post-attestation: change a constant (a malicious patch).
	img.Mod.Funcs["main"].Blocks[0].Instrs[0].Imm = 666
	k, _ := NewKernel(testKey)
	if _, err := k.Load("evil", img); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want signature failure", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	img, _ := BuildImage(goodProgram(), []byte("other-key"))
	k, _ := NewKernel(testKey)
	if _, err := k.Load("foreign", img); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtectionFaultKillsProcess(t *testing.T) {
	img, err := BuildImage(wildProgram(), testKey)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := NewKernel(testKey)
	p, err := k.Load("wild", img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Call("main")
	if !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want protection fault", err)
	}
	if p.Faults == 0 {
		t.Fatal("fault not counted")
	}
}

func TestCrossProcessIsolation(t *testing.T) {
	// Process A allocates and writes a secret. Process B (loaded into
	// the same physical heap) scans the address space; every touch of
	// A's memory must fault.
	k, _ := NewKernel(testKey)

	secretMod := ir.NewModule("secret")
	fa := secretMod.NewFunction("main", 0)
	ba := ir.NewBuilder(fa)
	buf := ba.Alloc(64)
	v := ba.Const(0xdeadbeef)
	ba.Store(buf, 0, v)
	ba.Ret(buf) // returns its own address — B will try to read it
	imgA, _ := BuildImage(secretMod, testKey)
	pa, _ := k.Load("A", imgA)
	addr, err := pa.Call("main")
	if err != nil {
		t.Fatal(err)
	}

	// B tries to read A's buffer directly.
	spyMod := ir.NewModule("spy")
	fb := spyMod.NewFunction("main", 1)
	bb := ir.NewBuilder(fb)
	bb.Ret(bb.Load(bb.Param(0), 0))
	imgB, _ := BuildImage(spyMod, testKey)
	pb, _ := k.Load("B", imgB)
	_, err = pb.Call("main", addr)
	if !errors.Is(err, ErrFault) {
		t.Fatalf("cross-process read err = %v, want fault", err)
	}
	// The data itself was physically readable (single address space) —
	// only the guard stopped it. Confirm the secret is really there.
	if k.Heap.Load(mem.Addr(addr)) != 0xdeadbeef {
		t.Fatal("test setup wrong: secret not in shared heap")
	}
}

func TestKernelCompactsBehindProcessBack(t *testing.T) {
	// A process allocates long-lived buffers with pointers between
	// them; the kernel compacts its memory to a new arena; the process
	// keeps running correctly afterwards — "Nautilus can perform
	// per-process and whole system memory defragmentation".
	m := ir.NewModule("longlived")
	// setup(): a = alloc; b = alloc; a[0] = &b; b[0] = 7; return &a
	setup := m.NewFunction("setup", 0)
	sb := ir.NewBuilder(setup)
	a := sb.Alloc(64)
	bbuf := sb.Alloc(64)
	sb.Store(a, 0, bbuf)
	seven := sb.Const(7)
	sb.Store(bbuf, 0, seven)
	sb.Ret(a)
	// follow(p): return (*(*p))[0] — chases a -> b -> 7.
	follow := m.NewFunction("follow", 1)
	fb := ir.NewBuilder(follow)
	ptr := fb.Load(fb.Param(0), 0)
	fb.Ret(fb.Load(ptr, 0))

	img, err := BuildImage(m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := NewKernel(testKey)
	p, err := k.Load("app", img)
	if err != nil {
		t.Fatal(err)
	}
	aAddr, err := p.Call("setup")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := p.Call("follow", aAddr); err != nil || got != 7 {
		t.Fatalf("pre-compact follow = %d, %v", got, err)
	}

	// Kernel moves everything to a fresh arena at 256 MiB.
	cost, err := k.CompactAll(map[*Process]mem.Addr{p: 0x1000_0000})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("compaction cost not accounted")
	}
	// The process's old root pointer is stale — the kernel's relocation
	// is transparent only through tracked pointers, so look up the new
	// root via the table (the kernel-side view).
	rs := p.Table.Regions()
	if len(rs) != 2 {
		t.Fatalf("regions = %d", len(rs))
	}
	if rs[0].Base != 0x1000_0000 {
		t.Fatalf("compaction did not move to arena: %#x", rs[0].Base)
	}
	// Chasing from the relocated root must still find 7: the a->b
	// pointer was patched during the move.
	if got, err := p.Call("follow", uint64(rs[0].Base)); err != nil || got != 7 {
		t.Fatalf("post-compact follow = %d, %v", got, err)
	}
}

func TestImageCompilePipelineCounts(t *testing.T) {
	mod := goodProgram()
	before := mod.Funcs["main"].CountOp(ir.OpGuard)
	if before != 0 {
		t.Fatal("program pre-instrumented")
	}
	img, _ := BuildImage(mod, testKey)
	after := img.Mod.Funcs["main"].CountOp(ir.OpGuard)
	if after == 0 {
		t.Fatal("no guards present after build")
	}
}

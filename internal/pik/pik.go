// Package pik implements the "process in kernel" model of §IV-A's
// enhanced CARAT: "a Linux user-level program can be compiled,
// transformed, linked, and cryptographically attested such that it can
// run as a part of Nautilus, at kernel-level, using physical addresses,
// in a simulacrum of a process."
//
// The pipeline is real end-to-end:
//
//  1. Build: the program is an internal/ir module.
//  2. Transform: the CARAT passes inject guards/tracking and hoist them.
//  3. Attest: the transformed module is canonically encoded and HMAC-
//     signed with the platform key; the kernel loader refuses anything
//     whose signature does not verify (tampering after attestation is
//     detected).
//  4. Run: each process gets its own arena, allocation table, and
//     protection domain; guards confine it to its own regions — paging-
//     free isolation. The kernel can relocate or compact any process's
//     memory at arbitrary granularity behind its back.
package pik

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/passes"
)

// Common loader errors.
var (
	ErrBadSignature = errors.New("pik: attestation verification failed")
	ErrFault        = errors.New("pik: protection fault")
)

// Image is an attested, transformed program ready for kernel loading.
type Image struct {
	Mod *ir.Module
	// Sig is the HMAC-SHA256 attestation over the canonical encoding.
	Sig []byte
	// GuardsInjected/Hoisted record the compile pipeline's work.
	GuardsInjected int
	GuardsHoisted  int
}

// Encode produces the canonical byte encoding of a module: functions in
// definition order, blocks in order, instructions with all operands.
// Any semantic change to the program changes the encoding.
func Encode(m *ir.Module) []byte {
	var buf []byte
	w32 := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf = append(buf, b[:]...)
	}
	ws := func(s string) {
		w32(int64(len(s)))
		buf = append(buf, s...)
	}
	ws(m.Name)
	fns := m.Functions()
	w32(int64(len(fns)))
	for _, f := range fns {
		ws(f.Name)
		w32(int64(f.NumParams))
		w32(int64(f.NumRegs))
		w32(int64(len(f.Blocks)))
		blockIndex := make(map[*ir.Block]int64, len(f.Blocks))
		for i, b := range f.Blocks {
			blockIndex[b] = int64(i)
		}
		for _, b := range f.Blocks {
			ws(b.Name)
			w32(int64(len(b.Instrs)))
			for _, in := range b.Instrs {
				w32(int64(in.Op))
				w32(int64(in.Dst))
				w32(int64(in.A))
				w32(int64(in.B))
				w32(in.Imm)
				w32(int64(binaryFloat(in.FImm)))
				w32(int64(in.Pred))
				ws(in.Callee)
				w32(int64(len(in.Args)))
				for _, a := range in.Args {
					w32(int64(a))
				}
				if in.Target != nil {
					w32(blockIndex[in.Target])
				} else {
					w32(-1)
				}
				if in.Else != nil {
					w32(blockIndex[in.Else])
				} else {
					w32(-1)
				}
				if in.Region {
					w32(1)
				} else {
					w32(0)
				}
			}
		}
	}
	return buf
}

func binaryFloat(f float64) uint64 { return math.Float64bits(f) }

// BuildImage runs the CARAT compile pipeline on mod and attests the
// result with key. The module is transformed in place.
func BuildImage(mod *ir.Module, key []byte) (*Image, error) {
	inj := &passes.CARATInject{}
	hoist := &passes.CARATHoist{}
	if err := passes.RunAll(mod, inj, hoist); err != nil {
		return nil, err
	}
	img := &Image{
		Mod:            mod,
		GuardsInjected: inj.GuardsInserted,
		GuardsHoisted:  hoist.HoistedInvariant + hoist.HoistedRegion,
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(Encode(mod))
	img.Sig = mac.Sum(nil)
	return img, nil
}

// Verify checks an image's attestation against key.
func Verify(img *Image, key []byte) bool {
	mac := hmac.New(sha256.New, key)
	mac.Write(Encode(img.Mod))
	return hmac.Equal(mac.Sum(nil), img.Sig)
}

// Process is a PIK process: kernel-level execution with CARAT-enforced
// isolation on physical addresses.
type Process struct {
	Name  string
	Table *carat.Table
	ip    *interp.Interp

	// Faults counts protection violations (accesses outside the
	// process's own regions).
	Faults int64
	// KillOnFault aborts execution at the first violation.
	KillOnFault bool
	faulted     bool
}

// Kernel hosts PIK processes over one shared physical address space —
// the single-address-space Nautilus model.
type Kernel struct {
	Key  []byte
	Heap *interp.Heap

	procs []*Process
}

// NewKernel creates a PIK host with the given platform key and a shared
// physical heap.
func NewKernel(key []byte) (*Kernel, error) {
	h, err := interp.NewHeap(0x10000, 512<<20)
	if err != nil {
		return nil, err
	}
	return &Kernel{Key: key, Heap: h}, nil
}

// Load verifies an image and creates a process for it. The process's
// allocations all come from the shared heap, tracked in its own table.
func (k *Kernel) Load(name string, img *Image) (*Process, error) {
	if !Verify(img, k.Key) {
		return nil, ErrBadSignature
	}
	p := &Process{Name: name, Table: carat.NewTable(), KillOnFault: true}
	// MaxSteps is left zero (interp.DefaultMaxSteps); PIK processes get
	// deeper call nesting than the interpreter default allows.
	ip := &interp.Interp{
		Mod:      img.Mod,
		Heap:     k.Heap,
		Cost:     interp.DefaultCosts(),
		MaxDepth: 512,
	}
	ip.Hooks.Guard = func(a mem.Addr) int64 {
		before := p.Table.Violations
		c := p.Table.Guard(a, false)
		if p.Table.Violations > before {
			p.Faults++
			if p.KillOnFault {
				p.faulted = true
			}
		}
		return c
	}
	ip.Hooks.GuardRegion = func(a mem.Addr) int64 {
		before := p.Table.Violations
		c := p.Table.GuardRegion(a)
		if p.Table.Violations > before {
			p.Faults++
			if p.KillOnFault {
				p.faulted = true
			}
		}
		return c
	}
	ip.Hooks.TrackAlloc = p.Table.TrackAlloc
	ip.Hooks.TrackFree = p.Table.TrackFree
	ip.Hooks.TrackEsc = p.Table.TrackEscape
	// The fault handler tears a faulting process down at the next
	// instruction boundary.
	ip.Hooks.Abort = func() error {
		if p.faulted {
			return ErrFault
		}
		return nil
	}
	p.ip = ip
	k.procs = append(k.procs, p)
	return p, nil
}

// Call runs an entry point of the process. A protection fault (with
// KillOnFault) aborts with ErrFault.
func (p *Process) Call(entry string, args ...uint64) (uint64, error) {
	ret, err := p.ip.Call(entry, args...)
	if p.faulted {
		return 0, fmt.Errorf("%w: %s touched foreign memory (%d faults)",
			ErrFault, p.Name, p.Faults)
	}
	if err != nil {
		return 0, err
	}
	return ret, nil
}

// Stats exposes the process's interpreter counters.
func (p *Process) Stats() *interp.Stats { return &p.ip.Stats }

// CompactAll performs whole-system memory defragmentation: every
// process's regions are evacuated to its assigned fresh arena
// ("Nautilus can perform per-'process' and whole system memory
// defragmentation"). The processes never notice: all escaped pointers
// are patched during the move.
func (k *Kernel) CompactAll(arenas map[*Process]mem.Addr) (int64, error) {
	var total int64
	for _, p := range k.procs {
		arena, ok := arenas[p]
		if !ok {
			continue
		}
		c, err := p.Table.Evacuate(k.Heap, arena, 64)
		total += c
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/interp"
	"repro/internal/workloads"
)

// runInterp is the `interweave interp` subcommand: execute the CARAT
// kernel suite on the compiled interpreter engine and report what the
// superinstruction fuser did with it. The default report is one line
// per kernel (checksum, steps, cycles, fused pair count); -profile
// switches to the dynamic opcode-pair profile gathered by the
// reference engine — the data that drives profile-guided fusion — as a
// deterministic top-N table per kernel. -fusion-out derives a fusion
// table from the suite-wide merged profile and writes it as JSON, in
// the format interp.FusionTable unmarshals. Returns 2 on usage errors,
// 1 on execution errors, 0 otherwise.
func runInterp(argv []string) int {
	fs := flag.NewFlagSet("interp", flag.ExitOnError)
	profile := fs.Bool("profile", false,
		"gather and print the dynamic opcode-pair profile instead of the engine summary")
	top := fs.Int("top", 10, "rows per kernel in the -profile table")
	nofuse := fs.Bool("nofuse", false, "disable superinstruction fusion in the engine summary")
	fusionOut := fs.String("fusion-out", "",
		"with -profile: write the fusion table derived from the merged suite profile to this file as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: interweave interp [-profile [-top N] [-fusion-out FILE]] [-nofuse]

Runs the CARAT kernel suite on the compiled interpreter. By default
prints one summary line per kernel: checksum, executed steps, cycles,
and the number of superinstruction pairs the fusion stage formed
(-nofuse pins fusion off). With -profile, runs the reference engine
with pair profiling and prints each kernel's top-N executed opcode
adjacencies with their fusibility — the input to profile-guided
fusion. -fusion-out persists the suite-wide profile's fusible top
pairs as a fusion-table JSON file that Interp.Fusion can load.`)
	}
	_ = fs.Parse(argv)

	if *profile {
		merged := &interp.PairProfile{}
		for _, k := range workloads.CARATSuite() {
			prof := &interp.PairProfile{}
			m := k.Build()
			ip, err := interp.New(m)
			if err != nil {
				fmt.Fprintf(os.Stderr, "interp: %s: %v\n", k.Name, err)
				return 1
			}
			ip.PairProf = prof
			if _, err := ip.Call(k.Entry); err != nil {
				fmt.Fprintf(os.Stderr, "interp: %s: %v\n", k.Name, err)
				return 1
			}
			fmt.Printf("=== %s (%d adjacencies)\n%s", k.Name, prof.Total(), prof.Render(*top))
			merged.Merge(prof)
		}
		if *fusionOut != "" {
			ft := merged.Table(*top)
			buf, err := json.MarshalIndent(ft, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "interp:", err)
				return 1
			}
			buf = append(buf, '\n')
			if err := os.WriteFile(*fusionOut, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "interp:", err)
				return 1
			}
			fmt.Printf("wrote %s (%d pairs)\n", *fusionOut, len(ft.Pairs()))
		}
		return 0
	}

	for _, k := range workloads.CARATSuite() {
		m := k.Build()
		ip, err := interp.New(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "interp: %s: %v\n", k.Name, err)
			return 1
		}
		if *nofuse {
			ip.Fusion = interp.NoFusion()
		}
		ret, err := ip.Call(k.Entry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "interp: %s: %v\n", k.Name, err)
			return 1
		}
		fmt.Printf("%-14s ret=%-14d steps=%-8d cycles=%-8d fused-pairs=%d\n",
			k.Name, ret, ip.Stats.Steps, ip.Stats.Cycles, ip.Program().FusedPairs())
	}
	return 0
}

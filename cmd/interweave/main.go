// Command interweave regenerates every table and figure of "The Case for
// an Interwoven Parallel Hardware/Software Stack" (SCWS/ROSS 2021) from
// the simulated stacks in this repository.
//
// Usage:
//
//	interweave <experiment> [flags]
//	interweave all
//
// Experiments:
//
//	nautilus    E1  §III   kernel primitives and app speedup vs Linux
//	fig3        E2  §IV-B  achieved vs target heartbeat rate (+ -overheads, -sweep)
//	fig4        E4  §IV-C  context switch cost family (+ -granularity)
//	carat       E5  §IV-A  guard overhead naive vs hoisted (+ -mobility)
//	fig6        E6  §V-A   kernel OpenMP relative performance (+ -epcc)
//	fig7        E7  §V-B   selective coherence deactivation (+ -sweep, -ablate)
//	virtine     E8  §IV-D  virtine start-up paths, bespoke contexts, service load
//	pipeline    E9  §V-D   IDT vs pipeline interrupt delivery
//	blending    E10 §V-C   interrupt-driven vs compiler-blended polling
//	farmem      X2  §V-C   sub-page transparent far memory
//	consistency X3  §V-B   selective fence ordering
//	riscv       X4  §V-F   mechanisms on open RISC-V hardware
//	paging      X5  §I/III translation-regime overheads
//	tasks       X6  §IV-C  fine-grain task viability
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	overheads := fs.Bool("overheads", false, "fig3: also print scheduling overheads")
	granularity := fs.Bool("granularity", false, "fig4: also print granularity floors")
	mobility := fs.Bool("mobility", false, "carat: also print heap compaction demo")
	epcc := fs.Bool("epcc", false, "fig6: also print EPCC sync microbenchmarks")
	sweep := fs.Bool("sweep", false, "fig7: also print scale/disaggregation sweep")
	ablate := fs.Bool("ablate", false, "fig7: also print per-class ablation")
	cpus := fs.Int("cpus", 16, "CPU count for CPU-parameterized experiments")
	seed := fs.Uint64("seed", 42, "simulation seed")
	jsonOut := fs.Bool("json", false, "emit tables as JSON instead of aligned text")
	_ = fs.Parse(os.Args[2:])

	emit := func(t *core.Table) {
		if *jsonOut {
			fmt.Println(t.JSON())
			return
		}
		fmt.Println(t)
	}

	run := func(name string) {
		switch name {
		case "nautilus":
			s := core.NewStack(*cpus)
			s.Seed = *seed
			emit(s.Primitives())
		case "fig3":
			s := core.NewStack(16)
			s.Seed = *seed
			cfg := core.DefaultFig3Config()
			emit(s.Fig3(cfg))
			if *overheads {
				emit(s.Fig3Overheads(cfg))
			}
			if *sweep {
				emit(s.Fig3Sweep(20))
			}
		case "fig4":
			s := core.KNLStack(1)
			s.Seed = *seed
			emit(s.Fig4())
			if *granularity {
				emit(s.GranularityLimit(0.5))
			}
		case "carat":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.CARAT())
			if *mobility {
				emit(s.CARATMobility())
			}
		case "fig6":
			s := core.KNLStack(1)
			s.Seed = *seed
			emit(s.Fig6(core.DefaultFig6Config()))
			if *epcc {
				emit(s.EPCC(*cpus))
				emit(s.Schedules(*cpus))
			}
		case "fig7":
			s := core.ServerStack()
			s.Seed = *seed
			emit(s.Fig7())
			if *sweep {
				emit(s.Fig7Sweep())
			}
			if *ablate {
				emit(s.AblationSharingClasses())
			}
		case "virtine":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.Virtines())
		case "pipeline":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.Pipeline())
		case "blending":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.Blending())
		case "farmem":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.FarMemory())
		case "consistency":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.Consistency())
		case "riscv":
			s := core.NewStack(*cpus)
			s.Seed = *seed
			emit(s.CrossISA())
		case "paging":
			s := core.NewStack(1)
			s.Seed = *seed
			emit(s.Paging())
		case "tasks":
			s := core.KNLStack(1)
			s.Seed = *seed
			emit(s.TaskGranularity(*cpus))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
			usage()
			os.Exit(2)
		}
	}

	if cmd == "all" {
		*overheads, *granularity, *mobility, *epcc, *sweep, *ablate =
			true, true, true, true, true, true
		for _, name := range []string{
			"nautilus", "fig3", "fig4", "carat", "fig6", "fig7",
			"virtine", "pipeline", "blending", "farmem", "consistency",
			"riscv", "paging", "tasks",
		} {
			run(name)
		}
		return
	}
	run(cmd)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: interweave <experiment> [flags]

experiments:
  nautilus    §III   kernel primitives and app speedup vs Linux (E1)
  fig3        §IV-B  heartbeat rate, Nautilus vs Linux (E2; -overheads for E3)
  fig4        §IV-C  context switch cost family (E4; -granularity)
  carat       §IV-A  CARAT guard overhead (E5; -mobility)
  fig6        §V-A   kernel OpenMP vs Linux OpenMP (E6; -epcc)
  fig7        §V-B   coherence deactivation (E7; -sweep for E11, -ablate)
  virtine     §IV-D  virtine start-up latencies (E8)
  pipeline    §V-D   pipeline interrupt delivery (E9)
  blending    §V-C   blended device polling (E10)
  farmem      §V-C   sub-page transparent far memory (extension)
  consistency §V-B   selective fence ordering (extension)
  riscv       §V-F   interweaving mechanisms on open hardware (extension)
  paging      §I/III translation-regime overheads (motivation)
  tasks       §IV-C  fine-grain task viability by runtime mode
  all                everything above with all sub-reports`)
}

// Command interweave regenerates every table and figure of "The Case for
// an Interwoven Parallel Hardware/Software Stack" (SCWS/ROSS 2021) from
// the simulated stacks in this repository.
//
// Usage:
//
//	interweave <experiment> [flags]
//	interweave all
//
// Experiments:
//
//	nautilus    E1  §III   kernel primitives and app speedup vs Linux
//	fig3        E2  §IV-B  achieved vs target heartbeat rate (+ -overheads, -sweep)
//	fig4        E4  §IV-C  context switch cost family (+ -granularity)
//	carat       E5  §IV-A  guard overhead naive vs hoisted (+ -mobility)
//	fig6        E6  §V-A   kernel OpenMP relative performance (+ -epcc)
//	fig7        E7  §V-B   selective coherence deactivation (+ -sweep, -ablate)
//	virtine     E8  §IV-D  virtine start-up paths, bespoke contexts, service load
//	pipeline    E9  §V-D   IDT vs pipeline interrupt delivery
//	blending    E10 §V-C   interrupt-driven vs compiler-blended polling
//	farmem      X2  §V-C   sub-page transparent far memory
//	consistency X3  §V-B   selective fence ordering
//	riscv       X4  §V-F   mechanisms on open RISC-V hardware
//	paging      X5  §I/III translation-regime overheads
//	tasks       X6  §IV-C  fine-grain task viability
//
// Independent experiment cells run on a bounded worker pool; -parallel N
// (or $INTERWEAVE_PARALLEL) sets the pool width, 0 meaning GOMAXPROCS.
// Output is byte-identical at every width: every cell derives its
// randomness from the seed (pre-split, index-ordered RNGs), and tables
// print in canonical order.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/passes"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "lint" {
		os.Exit(runLint(os.Args[2:]))
	}
	if cmd == "interp" {
		os.Exit(runInterp(os.Args[2:]))
	}
	if cmd == "cache" {
		os.Exit(runCache(os.Args[2:]))
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	overheads := fs.Bool("overheads", false, "fig3: also print scheduling overheads")
	granularity := fs.Bool("granularity", false, "fig4: also print granularity floors")
	mobility := fs.Bool("mobility", false, "carat: also print heap compaction demo")
	memstats := fs.Bool("memstats", false, "carat: also print heap allocator statistics")
	epcc := fs.Bool("epcc", false, "fig6: also print EPCC sync microbenchmarks")
	sweep := fs.Bool("sweep", false, "fig7: also print scale/disaggregation sweep")
	ablate := fs.Bool("ablate", false, "fig7: also print per-class ablation")
	cpus := fs.Int("cpus", 16, "CPU count for CPU-parameterized experiments")
	seed := fs.Uint64("seed", 42, "simulation seed")
	jsonOut := fs.Bool("json", false, "emit tables as JSON instead of aligned text")
	parallel := fs.Int("parallel", 0,
		"max concurrent experiment cells (0 = $INTERWEAVE_PARALLEL or GOMAXPROCS, 1 = sequential)")
	chaosSeed := fs.Uint64("chaos-seed", 0,
		"arm the fault-injection harness with this seed (0 = off); same seed replays the same faults")
	domains := fs.Int("domains", 0,
		"fig3: steal domains per run (0 = auto; >1 shards the event engine, one shard per domain)")
	shards := fs.Int("shards", 0,
		"event-engine shards (0 = follow -domains, 1 = force the sequential engine)")
	useCache := fs.Bool("cache", false,
		"memoize results in the content-addressed cache (disk spill at -cache-dir); output stays byte-identical")
	cacheDir := fs.String("cache-dir", os.Getenv(cache.EnvDir),
		"disk-spill directory for -cache (default $INTERWEAVE_CACHE_DIR; empty = memory only)")
	cacheStats := fs.Bool("cache-stats", false,
		"with -cache: print a hit/miss/spill report to stderr after the run")
	_ = fs.Parse(os.Args[2:])

	var resultCache *cache.Cache
	if *useCache {
		resultCache = cache.New(cache.Config{Dir: *cacheDir})
	}

	// The registry (internal/core) owns experiment dispatch and result
	// addressing; the CLI's job is translating flags into a RunConfig
	// and printing tables. `all` regenerates everything with every
	// optional table on, trimming the sweep axes to the classic small-N
	// points (SmallAxes): the 256–1024 CPU/core points take minutes
	// each and belong to the explicit `fig3 -sweep` / `fig7 -sweep`
	// invocations.
	runner := &core.Runner{Parallel: *parallel, Shards: *shards, Cache: resultCache}
	config := func(name string) core.RunConfig {
		cfg := core.DefaultRunConfig(name)
		cfg.CPUs = *cpus
		cfg.Seed = *seed
		cfg.ChaosSeed = *chaosSeed
		cfg.Domains = *domains
		cfg.Overheads = *overheads
		cfg.Granularity = *granularity
		cfg.Mobility = *mobility
		cfg.MemStats = *memstats
		cfg.EPCC = *epcc
		cfg.Sweep = *sweep
		cfg.Ablate = *ablate
		cfg.SmallAxes = cmd == "all"
		return cfg
	}
	run := func(name string) ([]*core.Table, error) {
		tables, _, err := runner.Run(context.Background(), config(name), nil)
		return tables, err
	}

	// fail reports an experiment failure: an invalid config prints
	// usage and exits 2 (the registry validates what the old dispatch
	// switch rejected inline), injected chaos faults print a replay
	// hint and exit 3, everything else exits 1.
	fail := func(err error) {
		var cerr *core.ConfigError
		if errors.As(err, &cerr) {
			fmt.Fprintf(os.Stderr, "%s\n\n", cerr.Msg)
			usage()
			os.Exit(2)
		}
		if fe, ok := chaos.AsFault(err); ok {
			fmt.Fprintf(os.Stderr, "chaos: experiment failed by injected fault %s\n", fe.Fault)
			fmt.Fprintf(os.Stderr, "chaos: replay with -chaos-seed %d (same seed, same fault trace)\n", *chaosSeed)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	print := func(tables []*core.Table) {
		for _, t := range tables {
			if *jsonOut {
				fmt.Println(t.JSON())
			} else {
				fmt.Println(t)
			}
		}
	}

	// report prints the cache activity summary — to stderr, so stdout
	// stays byte-identical with and without it.
	report := func() {
		if resultCache != nil && *cacheStats {
			fmt.Fprintln(os.Stderr, resultCache.Stats())
		}
	}

	if cmd == "all" {
		*overheads, *granularity, *mobility, *epcc, *sweep, *ablate =
			true, true, true, true, true, true
		// One goroutine per experiment on the same bounded pool the
		// per-experiment cells use; tables buffer per experiment and
		// print in canonical order once everything finished.
		ids := core.ExperimentIDs()
		results, err := exp.Map(exp.New(*parallel), len(ids),
			func(i int) ([]*core.Table, error) {
				return run(ids[i])
			})
		if err != nil {
			fail(err)
		}
		for _, tables := range results {
			print(tables)
		}
		report()
		return
	}
	tables, err := run(cmd)
	if err != nil {
		fail(err)
	}
	print(tables)
	report()
}

// runCache is the `interweave cache` subcommand: inspect (-stats) or
// purge (-clear) the on-disk spill directory, e.g. after a cost-table
// change bumps the version salt and strands old entries.
func runCache(argv []string) int {
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	dir := fs.String("dir", os.Getenv(cache.EnvDir),
		"cache directory (default $INTERWEAVE_CACHE_DIR)")
	clear := fs.Bool("clear", false, "remove every cache entry under -dir")
	stats := fs.Bool("stats", false, "report entry count, bytes, and corrupt entries (default action)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: interweave cache [-dir DIR] [-stats] [-clear]

Inspects or purges the on-disk result cache (see -cache on experiment
commands). -stats validates every entry and reports totals; -clear
removes all entries (only cache files are touched). With no flags,
-stats is implied. The current build's version salt is printed so stale
directories are easy to spot after a code change.`)
	}
	_ = fs.Parse(argv)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "cache: no directory: set $INTERWEAVE_CACHE_DIR or pass -dir")
		return 2
	}
	if !*clear {
		*stats = true
	}
	if *stats {
		st, err := cache.ScanDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cache: scanning %s: %v\n", *dir, err)
			return 1
		}
		fmt.Printf("cache: %s: %d entries, %d bytes, %d corrupt\n", *dir, st.Entries, st.Bytes, st.Corrupt)
		fmt.Printf("cache: current version salt %016x\n", core.VersionSalt())
	}
	if *clear {
		n, err := cache.ClearDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cache: clearing %s: %v\n", *dir, err)
			return 1
		}
		fmt.Printf("cache: %s: removed %d entries\n", *dir, n)
	}
	return 0
}

// runLint is the `interweave lint` subcommand: run the static
// memory-safety linter (internal/analysis) over named IR modules.
// Patterns name modules from the registry exactly, or with a `...`
// suffix as a prefix match (`kernels/...`). With no patterns it checks
// everything that ships — the example compiler module and the CARAT
// kernels — all of which must be clean; the seeded `buggy/...` modules
// are reachable only by explicit pattern. -opt adds the
// optimizer-opportunity diagnostics (redundant copies, loop-invariant
// recomputation, partially-dead stores); -O runs the standard
// optimization pipeline first, so `-opt -O` must always be clean (the
// linter and the passes share their analyses). Returns 2 on usage
// errors, 1 when any diagnostic is reported, 0 when clean.
func runLint(argv []string) int {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON, one object per line")
	list := fs.Bool("list", false, "list lintable module names and exit")
	opt := fs.Bool("opt", false, "also report optimizer opportunities (what passes.Optimize would remove)")
	optimize := fs.Bool("O", false, "run the standard optimization pipeline before linting")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: interweave lint [-json] [-list] [-opt] [-O] [pattern ...]

Lints IR modules with the internal/analysis memory-safety checker:
use-before-def, dead stores, use-after-free, double-free, leaks,
unreachable blocks. -opt adds optimizer-opportunity diagnostics
(redundant-copy, loop-invariant-recompute, partially-dead-store) plus
fusible-pair superinstruction opportunities; -O optimizes the module
first, so "-opt -O" reports nothing by construction (fusible pairs,
which no pass removes, are excluded under -O). A pattern is a module
name, or a prefix ending in "..." (e.g. kernels/...). Default
patterns: examples/... kernels/...
Seeded demonstration bugs live under buggy/...`)
	}
	_ = fs.Parse(argv)

	targets := workloads.LintTargets()
	targets = append(targets, workloads.BuggySuite()...)
	if *list {
		for _, t := range targets {
			fmt.Println(t.Name)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"examples/...", "kernels/..."}
	}
	match := func(name string) bool {
		for _, p := range patterns {
			if pre, ok := strings.CutSuffix(p, "..."); ok {
				if strings.HasPrefix(name, pre) {
					return true
				}
			} else if name == p {
				return true
			}
		}
		return false
	}

	checked, total := 0, 0
	for _, t := range targets {
		if !match(t.Name) {
			continue
		}
		checked++
		if *optimize {
			if _, err := passes.Optimize(t.Mod); err != nil {
				fmt.Fprintf(os.Stderr, "lint: optimizing %s: %v\n", t.Name, err)
				return 2
			}
		}
		diags := analysis.Lint(t.Mod, t.Extern)
		if *opt {
			diags = append(diags, analysis.LintOpt(t.Mod)...)
			// Fusible-pair opportunities are engine facts, not pipeline
			// debt: no IR pass removes them, so they are excluded from
			// the `-opt -O` lockstep gate (which must stay silent).
			if !*optimize {
				diags = append(diags, analysis.LintFusible(t.Mod)...)
			}
		}
		total += len(diags)
		for _, d := range diags {
			if *jsonOut {
				buf, err := json.Marshal(struct {
					Target string `json:"target"`
					analysis.Diag
				}{t.Name, d})
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 2
				}
				fmt.Println(string(buf))
			} else {
				fmt.Printf("%s: %s\n", t.Name, d)
			}
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "lint: no modules match %v (try -list)\n", patterns)
		return 2
	}
	if !*jsonOut {
		fmt.Printf("lint: %d module(s), %d diagnostic(s)\n", checked, total)
	}
	if total > 0 {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: interweave <experiment> [flags]

experiments:
  nautilus    §III   kernel primitives and app speedup vs Linux (E1)
  fig3        §IV-B  heartbeat rate, Nautilus vs Linux (E2; -overheads for E3)
  fig4        §IV-C  context switch cost family (E4; -granularity)
  carat       §IV-A  CARAT guard overhead (E5; -mobility, -memstats)
  fig6        §V-A   kernel OpenMP vs Linux OpenMP (E6; -epcc)
  fig7        §V-B   coherence deactivation (E7; -sweep for E11, -ablate)
  virtine     §IV-D  virtine start-up latencies (E8)
  pipeline    §V-D   pipeline interrupt delivery (E9)
  blending    §V-C   blended device polling (E10)
  farmem      §V-C   sub-page transparent far memory (extension)
  consistency §V-B   selective fence ordering (extension)
  riscv       §V-F   interweaving mechanisms on open hardware (extension)
  paging      §I/III translation-regime overheads (motivation)
  tasks       §IV-C  fine-grain task viability by runtime mode
  all                everything above with all sub-reports

tools:
  lint        static memory-safety linter over the IR modules
              (interweave lint -h for details)
  interp      interpreter engine summary and opcode-pair profiling
              (interweave interp -h for details)
  cache       inspect or purge the on-disk result cache
              (interweave cache -h for details)

flags:
  -parallel N  max concurrent experiment cells; 0 (default) uses
               $INTERWEAVE_PARALLEL or GOMAXPROCS, 1 runs sequentially.
               Output is byte-identical at every setting.
  -chaos-seed N  arm the deterministic fault-injection harness
               (internal/chaos): IPI loss/delay and timer jitter on
               every simulated machine. Same seed => same faults =>
               byte-identical output; injected failures exit 3 with a
               typed report instead of a stack trace.
  -cache       memoize results content-addressed by (seed, config,
               code version); warm runs are byte-identical to cold.
               Disk spill at -cache-dir / $INTERWEAVE_CACHE_DIR;
               -cache-stats reports hits/misses/spills on stderr.`)
}

// Command interweaved is the experiment service daemon: the runnable-job
// registry (internal/core) behind an HTTP/JSON API (internal/serve).
//
// Usage:
//
//	interweaved [flags]
//	interweaved -smoke
//
// The API (default address :8372):
//
//	POST   /v1/jobs              submit a job (JSON config; 202, or 200
//	                             when deduplicated onto a live/done job)
//	POST   /v1/jobs/batch        submit many; per-item status in order
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/result  rendered tables, byte-identical to the
//	                             interweave CLI (X-Result-Digest header)
//	GET    /v1/jobs/{id}/events  NDJSON progress (cells as they complete)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/stats             queue / pool / cache / job counters
//
// A job's ID is a prefix of its config's content-address cache key, so
// duplicate submissions — concurrent or later — coalesce onto one
// compute at every tier. SIGINT/SIGTERM drain gracefully: intake stops,
// queued and running jobs finish, then the process exits.
//
// -smoke runs a self-test instead of serving: an ephemeral-port daemon,
// one fig3 job submitted over HTTP, and the result checked byte-for-byte
// against the registry run directly in-process.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("interweaved", flag.ExitOnError)
	addr := fs.String("addr", ":8372", "listen address")
	parallel := fs.Int("parallel", 0,
		"max concurrent experiment cells across all jobs (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 4, "max concurrently running jobs")
	queue := fs.Int("queue", 64, "admission queue depth (full = HTTP 429)")
	shards := fs.Int("shards", 0, "event-engine shards (see interweave -shards)")
	cacheDir := fs.String("cache-dir", os.Getenv(cache.EnvDir),
		"disk-spill directory for the result cache (default $INTERWEAVE_CACHE_DIR; empty = memory only)")
	memBudget := fs.Int64("mem-budget", 0,
		"result-cache in-memory byte budget (0 = 64 MiB)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute,
		"how long shutdown waits for in-flight jobs before cancelling them")
	smoke := fs.Bool("smoke", false,
		"self-test: serve on an ephemeral port, run one fig3 job end to end, verify the digest, exit")
	_ = fs.Parse(os.Args[1:])

	opts := serve.Options{
		Parallel:   *parallel,
		Shards:     *shards,
		Workers:    *workers,
		QueueDepth: *queue,
		Cache:      cache.New(cache.Config{Dir: *cacheDir, MemBudget: *memBudget}),
	}

	if *smoke {
		if err := runSmoke(opts); err != nil {
			fmt.Fprintf(os.Stderr, "servesmoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	srv := serve.New(opts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "interweaved: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "interweaved: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// running jobs finish (cancelled only if the drain timeout expires).
	fmt.Fprintln(os.Stderr, "interweaved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = httpSrv.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "interweaved: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "interweaved: drained")
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// runSmoke is the -smoke self-test: a daemon on an ephemeral loopback
// port, one fig3 job driven entirely through the HTTP API, and the
// result compared byte-for-byte against the registry run directly
// in-process — the end-to-end form of the repo's standing guarantee
// that the daemon adds nothing to the result path.
func runSmoke(opts serve.Options) error {
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("servesmoke: daemon on %s\n", base)

	cfg := core.DefaultRunConfig("fig3")

	// Submit over HTTP.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "fig3"}`))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("submit: decode: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	if want := serve.JobID(cfg); st.ID != want {
		return fmt.Errorf("job ID %s != local key prefix %s", st.ID, want)
	}
	fmt.Printf("servesmoke: job %s accepted\n", st.ID)

	// Follow the event stream to completion (bounded: fig3 takes a few
	// seconds; 10 minutes covers the slowest CI hardware).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+st.ID+"/events", nil)
	events, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("events: %w", err)
	}
	defer events.Body.Close()
	var cells int
	var final string
	dec := json.NewDecoder(events.Body)
	for {
		var ev serve.Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("events: decode: %w", err)
		}
		if ev.Type == "cell" {
			cells++
		}
		final = ev.Type
	}
	if final != "done" {
		return fmt.Errorf("job ended %q, want done", final)
	}
	fmt.Printf("servesmoke: job done (%d cell events)\n", cells)

	// Fetch the rendered result and compare against a direct registry
	// run: byte-identical or the daemon has touched the result path.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: status %d err %v", resp.StatusCode, err)
	}
	digest := resp.Header.Get("X-Result-Digest")

	runner := &core.Runner{}
	tables, _, err := runner.Run(context.Background(), cfg, nil)
	if err != nil {
		return fmt.Errorf("direct run: %w", err)
	}
	var want bytes.Buffer
	for _, t := range tables {
		fmt.Fprintln(&want, t)
	}
	if !bytes.Equal(got, want.Bytes()) {
		return fmt.Errorf("daemon result differs from direct run (%d vs %d bytes)",
			len(got), want.Len())
	}
	fmt.Printf("servesmoke: result byte-identical to direct run (digest %s)\n", digest)

	// Drain cleanly.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("servesmoke: ok")
	return nil
}

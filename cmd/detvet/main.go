// Command detvet runs the determinism vet (internal/detvet) over the
// given directories and exits non-zero if any finding survives.
//
// Usage:
//
//	detvet DIR...
//
// With no arguments it vets the deterministic core of this repository:
// internal/sim, internal/machine, internal/heartbeat, internal/exp,
// internal/interp.
package main

import (
	"fmt"
	"os"

	"repro/internal/detvet"
)

// defaultDirs is the deterministic core: packages whose outputs must be
// reproducible from a seed alone.
var defaultDirs = []string{
	"internal/sim",
	"internal/machine",
	"internal/heartbeat",
	"internal/exp",
	// The interpreter's compiled engine must be reproducible too: the
	// fusion stage and both executors may not depend on map order, the
	// wall clock, or global randomness (bit-identical engines contract).
	"internal/interp",
	// The result cache serves bytes back as experiment output: key
	// construction and both storage tiers may not depend on map order,
	// the wall clock, or global randomness (byte-identical warm runs).
	"internal/cache",
	// The experiment service sits on the result path: everything it
	// serves must be byte-identical to the CLI. Wall-clock reads exist
	// only for event timestamps and carry detvet:ok suppressions; any
	// new one must justify itself the same way.
	"internal/serve",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	findings, err := detvet.CheckDirs(dirs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("detvet: %d dir(s) clean\n", len(dirs))
}

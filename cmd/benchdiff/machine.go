package main

// The -machine leg benchmarks the discrete-event machine itself rather
// than a guest computation: the Fig 3 heartbeat workload at large
// simulated-CPU counts, run once on the sequential engine and once on
// the sharded engine, asserting byte-identical schedules and recording
// the wall-clock scaling curve in BENCH_machine.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/heartbeat"
)

type machinePoint struct {
	CPUs          int     `json:"cpus"`
	Domains       int     `json:"domains"`
	EngineWorkers int     `json:"engine_workers"`
	Items         int64   `json:"items"`
	SequentialMs  float64 `json:"sequential_ms"`
	ShardedMs     float64 `json:"sharded_ms"`
	Speedup       float64 `json:"speedup"`
	Digest        string  `json:"digest"`
}

type machineReport struct {
	Points     []machinePoint `json:"points"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	CPU        string         `json:"cpu,omitempty"`
	Note       string         `json:"note"`
}

// machineDigest canonicalizes everything Fig 3 observes about a run
// into a core.Table and takes its content digest, so equality means the
// engines are indistinguishable to the figures — the same digest the
// result cache uses as its integrity check.
func machineDigest(rt *heartbeat.Runtime) string {
	t := &core.Table{
		ID:     "machine-digest",
		Header: []string{"worker", "items", "work", "promotions", "steal hits", "steal attempts", "poll", "beats"},
	}
	t.AddNote("done=" + strconv.FormatInt(int64(rt.DoneAt()), 10))
	for i := 0; i < rt.NumWorkers(); i++ {
		ws := rt.WorkerStats(i)
		t.AddRow(strconv.Itoa(i), strconv.FormatInt(ws.Items, 10),
			strconv.FormatInt(ws.WorkCycles, 10), strconv.FormatInt(ws.Promotions, 10),
			strconv.FormatInt(ws.StealHits, 10), strconv.FormatInt(ws.StealAttempts, 10),
			strconv.FormatInt(ws.PollCycles, 10), strconv.Itoa(len(ws.Beats)))
	}
	return fmt.Sprintf("%016x", t.Digest())
}

// machineRun executes one heartbeat configuration and returns wall time
// plus the schedule digest. shards == 1 forces the sequential oracle;
// shards == domains runs the sharded engine.
func machineRun(cpus, domains, shards int, items int64) (time.Duration, string) {
	s := core.NewStack(cpus)
	s.Shards = shards
	_, m := s.Build()
	hcfg := heartbeat.DefaultConfig()
	hcfg.Substrate = heartbeat.SubstrateNautilusIPI
	hcfg.PeriodCycles = s.Model.MicrosToCycles(20)
	hcfg.Seed = s.Seed
	hcfg.Domains = domains
	rt := heartbeat.New(m, hcfg)
	start := time.Now()
	rt.Run(items, 40, 32)
	return time.Since(start), machineDigest(rt)
}

func runMachine(out string) error {
	rep := machineReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "wall-clock ms are machine-dependent; the tracked claim is digest equality " +
			"(sharded == sequential, bit-exact). Sharded speedup is bounded by GOMAXPROCS: " +
			"with one OS CPU the shards execute serially and speedup ~1x is expected.",
	}
	// Carry the host CPU tag forward from an existing file, as the other
	// legs do for their pinned sections.
	if prev, err := os.ReadFile(out); err == nil {
		var old machineReport
		if json.Unmarshal(prev, &old) == nil {
			rep.CPU = old.CPU
		}
	}

	for _, cpus := range []int{64, 256, 512, 1024} {
		domains := cpus / 32
		if domains < 2 {
			domains = 2
		}
		items := core.Fig3SweepItems(cpus)
		fmt.Printf("bench machine cpus=%-5d domains=%-3d sequential...", cpus, domains)
		seqT, seqD := machineRun(cpus, domains, 1, items)
		fmt.Printf(" %7.0f ms   sharded...", float64(seqT.Microseconds())/1e3)
		shT, shD := machineRun(cpus, domains, domains, items)
		fmt.Printf(" %7.0f ms\n", float64(shT.Microseconds())/1e3)
		if seqD != shD {
			return fmt.Errorf("machine bench cpus=%d: sharded digest %s != sequential %s",
				cpus, shD, seqD)
		}
		rep.Points = append(rep.Points, machinePoint{
			CPUs:          cpus,
			Domains:       domains,
			EngineWorkers: exp.EngineWorkers(0, domains),
			Items:         items,
			SequentialMs:  round2(float64(seqT.Microseconds()) / 1e3),
			ShardedMs:     round2(float64(shT.Microseconds()) / 1e3),
			Speedup:       round2(float64(seqT) / float64(shT)),
			Digest:        shD,
		})
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The allocator microbenches run against both engines through this
// surface (the package-level interface the two engines share).
type allocator interface {
	Alloc(n uint64) (mem.Addr, error)
	Free(a mem.Addr) error
}

const (
	memRegion   = uint64(64 << 20) // per-bench buddy region
	memMinOrder = uint(6)
)

func newEngine(reference bool) allocator {
	if reference {
		b, err := mem.NewReferenceBuddy(0x10000, memRegion, memMinOrder)
		if err != nil {
			panic(err)
		}
		return b
	}
	b, err := mem.NewBuddy(0x10000, memRegion, memMinOrder)
	if err != nil {
		panic(err)
	}
	return b
}

// benchMemAlloc measures pure allocation: blocks accumulate into a
// pre-sized slot array; when the window fills, the timer stops while it
// drains.
func benchMemAlloc(reference bool) entry {
	r := testing.Benchmark(func(b *testing.B) {
		a := newEngine(reference)
		const window = 1 << 16
		slots := make([]mem.Addr, 0, window)
		// Warm-up: materialize metadata pages the window will touch.
		for i := 0; i < window; i++ {
			p, err := a.Alloc(64)
			if err != nil {
				b.Fatal(err)
			}
			slots = append(slots, p)
		}
		for _, p := range slots {
			if err := a.Free(p); err != nil {
				b.Fatal(err)
			}
		}
		slots = slots[:0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(slots) == window {
				b.StopTimer()
				for _, p := range slots {
					if err := a.Free(p); err != nil {
						b.Fatal(err)
					}
				}
				slots = slots[:0]
				b.StartTimer()
			}
			p, err := a.Alloc(64)
			if err != nil {
				b.Fatal(err)
			}
			slots = append(slots, p)
		}
	})
	return entry{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

// benchMemFree measures pure frees: the timer stops while a batch is
// re-allocated.
func benchMemFree(reference bool) entry {
	r := testing.Benchmark(func(b *testing.B) {
		a := newEngine(reference)
		const window = 1 << 16
		slots := make([]mem.Addr, 0, window)
		fill := func() {
			for len(slots) < window {
				p, err := a.Alloc(64)
				if err != nil {
					b.Fatal(err)
				}
				slots = append(slots, p)
			}
		}
		fill()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(slots) == 0 {
				b.StopTimer()
				fill()
				b.StartTimer()
			}
			p := slots[len(slots)-1]
			slots = slots[:len(slots)-1]
			if err := a.Free(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	return entry{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

// benchMemChurn measures a mixed workload: each op is one allocation of
// a varied size plus one free of a random live block, the split/coalesce
// pattern a kernel heap sees.
func benchMemChurn(reference bool) entry {
	r := testing.Benchmark(func(b *testing.B) {
		a := newEngine(reference)
		rng := sim.NewRNG(42)
		const live = 1024
		slots := make([]mem.Addr, 0, live)
		sizes := [...]uint64{64, 192, 512, 1024, 3000, 4096}
		for len(slots) < live {
			p, err := a.Alloc(sizes[rng.Intn(len(sizes))])
			if err != nil {
				b.Fatal(err)
			}
			slots = append(slots, p)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := rng.Intn(live)
			if err := a.Free(slots[j]); err != nil {
				b.Fatal(err)
			}
			p, err := a.Alloc(sizes[rng.Intn(len(sizes))])
			if err != nil {
				b.Fatal(err)
			}
			slots[j] = p
		}
	})
	return entry{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

// contended is the N-core result block: one shared zone hammered by
// simulated CPUs through the magazine cache versus through a plain
// mutex around the raw buddy.
type contended struct {
	CPUs           int     `json:"cpus"`
	OpsPerCPU      int     `json:"ops_per_cpu"`
	CacheOpsPerSec float64 `json:"cache_ops_per_sec"`
	MutexOpsPerSec float64 `json:"mutex_ops_per_sec"`
	Speedup        float64 `json:"speedup"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// churnWorker runs ops churn operations on behalf of cpu, through the
// given alloc/free pair.
func churnWorker(cpu, ops int, alloc func(int, uint64) (mem.Addr, error), free func(int, mem.Addr) error) error {
	rng := sim.NewRNG(uint64(cpu)*6151 + 11)
	sizes := [...]uint64{64, 192, 512, 1024}
	const live = 256
	slots := make([]mem.Addr, 0, live)
	for i := 0; i < ops; i++ {
		if len(slots) < live {
			p, err := alloc(cpu, sizes[rng.Intn(len(sizes))])
			if err != nil {
				return err
			}
			slots = append(slots, p)
			continue
		}
		j := rng.Intn(live)
		if err := free(cpu, slots[j]); err != nil {
			return err
		}
		p, err := alloc(cpu, sizes[rng.Intn(len(sizes))])
		if err != nil {
			return err
		}
		slots[j] = p
	}
	for _, p := range slots {
		if err := free(cpu, p); err != nil {
			return err
		}
	}
	return nil
}

// benchContended times cpus goroutines running a fixed churn workload
// against one zone, first through the CPUCache magazines, then through a
// single mutex over the raw buddy (the sharing discipline the magazines
// replace).
func benchContended(cpus, opsPerCPU int) (contended, error) {
	run := func(alloc func(int, uint64) (mem.Addr, error), free func(int, mem.Addr) error) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make([]error, cpus)
		start := time.Now()
		for cpu := 0; cpu < cpus; cpu++ {
			cpu := cpu
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[cpu] = churnWorker(cpu, opsPerCPU, alloc, free)
			}()
		}
		wg.Wait()
		el := time.Since(start)
		for _, e := range errs {
			if e != nil {
				return 0, e
			}
		}
		return el, nil
	}

	// Magazine-cache front-end.
	zone, err := mem.NewBuddy(0, memRegion, memMinOrder)
	if err != nil {
		return contended{}, err
	}
	cache, err := mem.NewCPUCache(zone, cpus, 0)
	if err != nil {
		return contended{}, err
	}
	cacheTime, err := run(cache.AllocOn, cache.FreeOn)
	if err != nil {
		return contended{}, err
	}
	hitRate := cache.Stats().HitRate()

	// Mutex-only sharing of the same buddy design.
	mzone, err := mem.NewBuddy(0, memRegion, memMinOrder)
	if err != nil {
		return contended{}, err
	}
	var mu sync.Mutex
	mutexTime, err := run(
		func(_ int, n uint64) (mem.Addr, error) {
			mu.Lock()
			defer mu.Unlock()
			return mzone.Alloc(n)
		},
		func(_ int, a mem.Addr) error {
			mu.Lock()
			defer mu.Unlock()
			return mzone.Free(a)
		})
	if err != nil {
		return contended{}, err
	}

	totalOps := float64(cpus * opsPerCPU)
	return contended{
		CPUs:           cpus,
		OpsPerCPU:      opsPerCPU,
		CacheOpsPerSec: round2(totalOps / cacheTime.Seconds()),
		MutexOpsPerSec: round2(totalOps / mutexTime.Seconds()),
		Speedup:        round2(mutexTime.Seconds() / cacheTime.Seconds()),
		CacheHitRate:   round2(hitRate),
	}, nil
}

type memReport struct {
	Fast                map[string]entry `json:"fast"`
	Reference           map[string]entry `json:"reference"`
	GeomeanSpeedupVsRef float64          `json:"geomean_speedup_vs_reference"`
	Contended           contended        `json:"contended"`
	Note                string           `json:"note"`
}

// runMem benchmarks the allocator fast path (BENCH_mem.json): single-core
// alloc/free/churn on the intrusive Buddy vs the map-based
// ReferenceBuddy, plus the contended magazine-vs-mutex aggregate.
func runMem(out string) error {
	rep := memReport{
		Fast:      make(map[string]entry),
		Reference: make(map[string]entry),
		Note: "ns_per_op are machine-dependent; the tracked claims are the geomean, " +
			"the contended speedup, and fast-path allocs_per_op",
	}
	benches := []struct {
		name string
		fn   func(bool) entry
	}{
		{"alloc", benchMemAlloc},
		{"free", benchMemFree},
		{"churn", benchMemChurn},
	}
	for _, bm := range benches {
		fmt.Printf("bench mem/%-6s fast...", bm.name)
		rep.Fast[bm.name] = bm.fn(false)
		fmt.Printf(" %6d ns/op %2d allocs/op   reference...",
			rep.Fast[bm.name].NsPerOp, rep.Fast[bm.name].AllocsPerOp)
		rep.Reference[bm.name] = bm.fn(true)
		fmt.Printf(" %6d ns/op\n", rep.Reference[bm.name].NsPerOp)
	}
	rep.GeomeanSpeedupVsRef = round2(geomean(rep.Reference, rep.Fast))

	fmt.Printf("bench mem contended (8 cpus, magazines vs mutex)...")
	ct, err := benchContended(8, 200_000)
	if err != nil {
		return err
	}
	rep.Contended = ct
	fmt.Printf(" %.2fx (hit rate %.0f%%)\n", ct.Speedup, ct.CacheHitRate*100)
	fmt.Printf("geomean single-core speedup vs reference engine: %.2fx\n", rep.GeomeanSpeedupVsRef)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// quickCheckMem is the allocator leg of -quick: a deterministic 10k-op
// trace through both engines, requiring identical addresses, errors, and
// stats — the same property the fuzzer explores, as a CI smoke.
func quickCheckMem() error {
	fast, err := mem.NewBuddy(0x4000, 1<<20, 6)
	if err != nil {
		return err
	}
	ref, err := mem.NewReferenceBuddy(0x4000, 1<<20, 6)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(7)
	var live []mem.Addr
	for op := 0; op < 10_000; op++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := uint64(rng.Intn(8192) + 1)
			fa, fe := fast.Alloc(n)
			ra, re := ref.Alloc(n)
			if fe != re || fa != ra {
				return fmt.Errorf("mem op %d: Alloc(%d) fast=(%#x,%v) reference=(%#x,%v)", op, n, fa, fe, ra, re)
			}
			if fe == nil {
				live = append(live, fa)
			}
		} else {
			i := rng.Intn(len(live))
			if fe, re := fast.Free(live[i]), ref.Free(live[i]); fe != nil || re != nil {
				return fmt.Errorf("mem op %d: Free fast=%v reference=%v", op, fe, re)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if fast.Stats() != ref.Stats() {
		return fmt.Errorf("mem: stats diverge after trace")
	}
	if err := fast.CheckInvariants(); err != nil {
		return fmt.Errorf("mem: fast invariants: %w", err)
	}
	if err := ref.CheckInvariants(); err != nil {
		return fmt.Errorf("mem: reference invariants: %w", err)
	}
	fmt.Printf("ok  mem            10000-op differential trace, stats identical\n")
	return nil
}

// quickCheckChaos is the fault-injected allocator leg of -quick: the
// same differential trace, but with each engine driven by an identical
// chaos fault schedule (two plans, same seed, same site, so both
// engines draw the same per-call decisions). Both engines must fail on
// exactly the same operations with the same recorded fault, produce
// identical addresses everywhere else, keep their invariants at every
// firing, and emit identical fault traces.
func quickCheckChaos(seed uint64) error {
	fast, err := mem.NewBuddy(0x4000, 1<<20, 6)
	if err != nil {
		return err
	}
	ref, err := mem.NewReferenceBuddy(0x4000, 1<<20, 6)
	if err != nil {
		return err
	}
	cfg := chaos.DefaultConfig()
	cfg.AllocFailProb = 0.05
	planF := chaos.NewPlan(seed, cfg)
	planR := chaos.NewPlan(seed, cfg)
	fast.Inject = planF.AllocInjector("benchdiff/alloc", mem.ErrOutOfMemory)
	ref.Inject = planR.AllocInjector("benchdiff/alloc", mem.ErrOutOfMemory)
	planF.OnInvariant("buddy-fast", fast.CheckInvariants)
	planR.OnInvariant("buddy-reference", ref.CheckInvariants)

	rng := sim.NewRNG(seed ^ 0xc4a05)
	var live []mem.Addr
	injected := 0
	for op := 0; op < 10_000; op++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			n := uint64(rng.Intn(8192) + 1)
			fa, fe := fast.Alloc(n)
			ra, re := ref.Alloc(n)
			ff, fInj := chaos.AsFault(fe)
			rf, rInj := chaos.AsFault(re)
			if fInj != rInj || (fInj && ff.Fault != rf.Fault) {
				return fmt.Errorf("chaos op %d: fault schedules diverge (fast %v, reference %v)", op, fe, re)
			}
			if fInj {
				injected++
				continue
			}
			if fe != re || fa != ra {
				return fmt.Errorf("chaos op %d: Alloc(%d) fast=(%#x,%v) reference=(%#x,%v)", op, n, fa, fe, ra, re)
			}
			if fe == nil {
				live = append(live, fa)
			}
		} else {
			i := rng.Intn(len(live))
			if fe, re := fast.Free(live[i]), ref.Free(live[i]); fe != nil || re != nil {
				return fmt.Errorf("chaos op %d: Free fast=%v reference=%v", op, fe, re)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if fast.Stats() != ref.Stats() {
		return fmt.Errorf("chaos: stats diverge after fault-injected trace")
	}
	if ts := planF.TraceString(); ts != planR.TraceString() {
		return fmt.Errorf("chaos: fault traces diverge between engines")
	}
	if v := append(planF.Violations(), planR.Violations()...); len(v) > 0 {
		return fmt.Errorf("chaos: %d invariant violation(s), first: %v", len(v), v[0])
	}
	fmt.Printf("ok  chaos          10000-op trace under seed %d: %d injected faults, engines identical\n", seed, injected)
	return nil
}

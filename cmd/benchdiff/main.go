// Command benchdiff measures the interpreter's execution engines on the
// CARAT kernel suite and records the results in a JSON file
// (BENCH_interp.json at the repo root).
//
// Modes:
//
//	benchdiff -o BENCH_interp.json        # full run: bench fast + reference, write JSON
//	benchdiff -quick                      # CI smoke: one run per kernel per engine,
//	                                      # verify bit-identical results, write nothing;
//	                                      # also runs a 10k-op allocator differential trace
//	benchdiff -mem -o BENCH_mem.json      # allocator benches: intrusive Buddy vs
//	                                      # ReferenceBuddy, plus contended magazines vs mutex
//	benchdiff -machine                    # sharded event-engine scaling curve at
//	                                      # 64-1024 simulated CPUs -> BENCH_machine.json
//	benchdiff -cache -o BENCH_cache.json  # result-cache cold/warm/restart/coalesced legs;
//	benchdiff -cache -quick               # cold-vs-warm byte-identity smoke, write nothing
//
// The output file may contain a hand-pinned "seed" section (numbers
// captured before the fast path existed); benchdiff preserves it when
// rewriting the file and reports the geomean speedup against it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/interp"
	"repro/internal/passes"
	"repro/internal/workloads"
)

type entry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type report struct {
	// Seed is the pinned pre-fast-path baseline; benchdiff never
	// overwrites it, only carries it forward.
	Seed                 map[string]entry `json:"seed,omitempty"`
	Fast                 map[string]entry `json:"fast"`
	Reference            map[string]entry `json:"reference"`
	Opt                  map[string]entry `json:"opt"`
	Fused                map[string]entry `json:"fused"`
	OptFused             map[string]entry `json:"opt_fused"`
	GeomeanSpeedupVsSeed float64          `json:"geomean_speedup_vs_seed,omitempty"`
	GeomeanSpeedupVsRef  float64          `json:"geomean_speedup_vs_reference,omitempty"`
	GeomeanSpeedupOpt    float64          `json:"geomean_speedup_opt_vs_fast,omitempty"`
	GeomeanSpeedupFused  float64          `json:"geomean_speedup_fused_vs_fast,omitempty"`
	GeomeanSpeedupOptFus float64          `json:"geomean_speedup_optfused_vs_fast,omitempty"`
	CPU                  string           `json:"cpu,omitempty"`
	Note                 string           `json:"note,omitempty"`
}

// legSpec selects one measured engine configuration of a kernel.
type legSpec struct {
	name      string
	reference bool
	optimize  bool
	fused     bool
}

// interpLegs is the measured matrix: the fast/reference/opt legs pin
// fusion off (it is on by default) so the fused-vs-fast geomean
// compares against an honest unfused baseline.
var interpLegs = []legSpec{
	{name: "fast"},
	{name: "reference", reference: true},
	{name: "opt", optimize: true},
	{name: "fused", fused: true},
	{name: "opt_fused", optimize: true, fused: true},
}

// benchKernel measures every engine leg of one kernel. The legs are
// timed interleaved — each round times every leg once, back to back,
// and a leg's ns/op is its median round — rather than sequentially:
// on a machine with background load or frequency scaling, sequential
// per-leg benchmarks attribute whole slow windows to single legs and
// can invert real orderings. Interleaving keeps every leg's samples in
// the same machine states, and the median (unlike the minimum, which
// may pick each leg's sample from a different frequency state)
// preserves the cross-leg ratios the tracked geomeans are built from.
// Alloc counts are taken from a separate counted window per leg (they
// are deterministic; order statistics are meaningless for them).
func benchKernel(k workloads.IRKernel) (map[string]entry, error) {
	const (
		rounds    = 15
		targetRun = 2 * time.Millisecond
	)
	type state struct {
		call    func() error
		iters   int
		samples []int64 // ns/op, one per round
	}
	sts := make([]*state, len(interpLegs))
	for i, leg := range interpLegs {
		m := k.Build()
		if leg.optimize {
			if _, err := passes.Optimize(m); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", k.Name, leg.name, err)
			}
		}
		ip, err := interp.New(m)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", k.Name, leg.name, err)
		}
		if !leg.fused {
			ip.Fusion = interp.NoFusion()
		}
		ref := leg.reference
		call := func() error {
			// MaxSteps bounds cumulative steps across Calls, so the
			// counters reset each iteration.
			ip.Stats = interp.Stats{}
			var err error
			if ref {
				_, err = ip.ReferenceCall(k.Entry)
			} else {
				_, err = ip.Call(k.Entry)
			}
			return err
		}
		// First call warms the program cache (Compile); the second,
		// timed alone, calibrates the per-round iteration count.
		if err := call(); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", k.Name, leg.name, err)
		}
		t0 := time.Now()
		if err := call(); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", k.Name, leg.name, err)
		}
		iters := int(targetRun / (time.Since(t0) + 1))
		if iters < 1 {
			iters = 1
		}
		if iters > 8 {
			iters = 8
		}
		sts[i] = &state{call: call, iters: iters}
	}
	for r := 0; r < rounds; r++ {
		for _, s := range sts {
			t0 := time.Now()
			for j := 0; j < s.iters; j++ {
				if err := s.call(); err != nil {
					return nil, fmt.Errorf("%s: %w", k.Name, err)
				}
			}
			s.samples = append(s.samples, time.Since(t0).Nanoseconds()/int64(s.iters))
		}
	}
	out := make(map[string]entry, len(interpLegs))
	for i, leg := range interpLegs {
		allocs, bytes, err := measureAllocs(sts[i].call)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", k.Name, leg.name, err)
		}
		s := sts[i].samples
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		out[leg.name] = entry{NsPerOp: s[len(s)/2], AllocsPerOp: allocs, BytesPerOp: bytes}
	}
	return out, nil
}

// measureAllocs reports per-call heap allocations the way
// testing.B.ReportAllocs does: a MemStats delta over a counted window.
func measureAllocs(call func() error) (allocs, bytes int64, err error) {
	const n = 8
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		if err := call(); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return int64(m1.Mallocs-m0.Mallocs) / n, int64(m1.TotalAlloc-m0.TotalAlloc) / n, nil
}

// quickCheck runs each kernel once per engine and requires bit-identical
// return values, Stats, and final heaps — a fast equivalence smoke for
// `make check`, with no timing thresholds.
func quickCheck() error {
	for _, k := range workloads.CARATSuite() {
		run := func(reference, optimize, fused bool) (uint64, interp.Stats, interface{}, error) {
			m := k.Build()
			if optimize {
				if _, err := passes.Optimize(m); err != nil {
					return 0, interp.Stats{}, nil, err
				}
			}
			ip, err := interp.New(m)
			if err != nil {
				return 0, interp.Stats{}, nil, err
			}
			if !fused {
				ip.Fusion = interp.NoFusion()
			}
			var ret uint64
			if reference {
				ret, err = ip.ReferenceCall(k.Entry)
			} else {
				ret, err = ip.Call(k.Entry)
			}
			return ret, ip.Stats, ip.Heap.Snapshot(), err
		}
		fr, fs, fh, ferr := run(false, false, false)
		rr, rs, rh, rerr := run(true, false, false)
		if ferr != nil || rerr != nil {
			return fmt.Errorf("%s: fast err %v, reference err %v", k.Name, ferr, rerr)
		}
		if fr != rr || fs != rs || !reflect.DeepEqual(fh, rh) {
			return fmt.Errorf("%s: engines diverge (ret %d vs %d)", k.Name, fr, rr)
		}
		if k.Want != 0 && fr != k.Want {
			return fmt.Errorf("%s: checksum %d, want %d", k.Name, fr, k.Want)
		}
		// The fused fast path must reproduce the reference run exactly:
		// same return, same Stats (steps, cycles, every counter), same
		// final heap.
		ur, us, uh, uerr := run(false, false, true)
		if uerr != nil {
			return fmt.Errorf("%s: fused err %v", k.Name, uerr)
		}
		if ur != rr || us != rs || !reflect.DeepEqual(uh, rh) {
			return fmt.Errorf("%s: fused engine diverges (ret %d vs %d)", k.Name, ur, rr)
		}
		// The optimized module must stay bit-identical across engines
		// and preserve the pristine checksum.
		ofr, ofs, ofh, oferr := run(false, true, false)
		orr, ors, orh, orerr := run(true, true, false)
		if oferr != nil || orerr != nil {
			return fmt.Errorf("%s: optimized fast err %v, reference err %v", k.Name, oferr, orerr)
		}
		if ofr != orr || ofs != ors || !reflect.DeepEqual(ofh, orh) {
			return fmt.Errorf("%s: optimized engines diverge (ret %d vs %d)", k.Name, ofr, orr)
		}
		if ofr != fr {
			return fmt.Errorf("%s: optimizer changed checksum %d -> %d", k.Name, fr, ofr)
		}
		oufr, oufs, oufh, ouferr := run(false, true, true)
		if ouferr != nil {
			return fmt.Errorf("%s: opt-fused err %v", k.Name, ouferr)
		}
		if oufr != orr || oufs != ors || !reflect.DeepEqual(oufh, orh) {
			return fmt.Errorf("%s: opt-fused engine diverges (ret %d vs %d)", k.Name, oufr, orr)
		}
		fmt.Printf("ok  %-14s ret=%d steps=%d cycles=%d opt-cycles=%d (fused verified)\n",
			k.Name, fr, fs.Steps, fs.Cycles, ofs.Cycles)
	}
	return nil
}

// geomean returns the geometric-mean ratio base[k]/meas[k] over the
// kernels present in both maps.
func geomean(base, meas map[string]entry) float64 {
	var sum float64
	n := 0
	for name, b := range base {
		m, ok := meas[name]
		if !ok || b.NsPerOp == 0 || m.NsPerOp == 0 {
			continue
		}
		sum += math.Log(float64(b.NsPerOp) / float64(m.NsPerOp))
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func main() {
	out := flag.String("o", "", "output file (default BENCH_interp.json, or BENCH_mem.json with -mem)")
	quick := flag.Bool("quick", false, "equivalence smoke only; measure nothing, write nothing")
	memMode := flag.Bool("mem", false, "benchmark the memory allocator instead of the interpreter")
	machineMode := flag.Bool("machine", false,
		"benchmark the sharded event engine at 64-1024 simulated CPUs instead of the interpreter")
	cacheMode := flag.Bool("cache", false,
		"benchmark the content-addressed result cache (cold/warm/restart/coalesced legs) instead of the interpreter")
	chaosSeed := flag.Uint64("chaos-seed", 11,
		"seed for the fault-injected allocator differential run by -quick")
	flag.Parse()

	if *quick {
		if *cacheMode {
			if err := quickCheckCache(); err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff:", err)
				os.Exit(1)
			}
			return
		}
		if err := quickCheck(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		if err := quickCheckMem(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		if err := quickCheckChaos(*chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	if *memMode {
		if *out == "" {
			*out = "BENCH_mem.json"
		}
		if err := runMem(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if *machineMode {
		if *out == "" {
			*out = "BENCH_machine.json"
		}
		if err := runMachine(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if *cacheMode {
		if *out == "" {
			*out = "BENCH_cache.json"
		}
		if err := runCacheBench(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_interp.json"
	}

	rep := report{
		Fast:      make(map[string]entry),
		Reference: make(map[string]entry),
		Opt:       make(map[string]entry),
		Fused:     make(map[string]entry),
		OptFused:  make(map[string]entry),
		Note:      "ns_per_op are machine-dependent; the tracked claims are the geomeans and fast-path allocs_per_op",
	}
	// Carry the pinned seed baseline forward from an existing file.
	if prev, err := os.ReadFile(*out); err == nil {
		var old report
		if json.Unmarshal(prev, &old) == nil {
			rep.Seed = old.Seed
			rep.CPU = old.CPU
		}
	}

	names := make([]string, 0)
	for _, k := range workloads.CARATSuite() {
		names = append(names, k.Name)
		res, err := benchKernel(k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		rep.Fast[k.Name] = res["fast"]
		rep.Reference[k.Name] = res["reference"]
		rep.Opt[k.Name] = res["opt"]
		rep.Fused[k.Name] = res["fused"]
		rep.OptFused[k.Name] = res["opt_fused"]
		fmt.Printf("bench %-14s fast %8d ns/op %2d allocs/op   reference %8d   opt %8d   fused %8d ns/op %2d allocs/op   opt+fused %8d\n",
			k.Name, res["fast"].NsPerOp, res["fast"].AllocsPerOp,
			res["reference"].NsPerOp, res["opt"].NsPerOp,
			res["fused"].NsPerOp, res["fused"].AllocsPerOp, res["opt_fused"].NsPerOp)
	}
	sort.Strings(names)

	rep.GeomeanSpeedupVsRef = round2(geomean(rep.Reference, rep.Fast))
	rep.GeomeanSpeedupOpt = round2(geomean(rep.Fast, rep.Opt))
	rep.GeomeanSpeedupFused = round2(geomean(rep.Fast, rep.Fused))
	rep.GeomeanSpeedupOptFus = round2(geomean(rep.Fast, rep.OptFused))
	fmt.Printf("geomean speedup opt vs fast: %.2fx, fused vs fast: %.2fx, opt+fused vs fast: %.2fx\n",
		rep.GeomeanSpeedupOpt, rep.GeomeanSpeedupFused, rep.GeomeanSpeedupOptFus)
	if len(rep.Seed) > 0 {
		rep.GeomeanSpeedupVsSeed = round2(geomean(rep.Seed, rep.Fast))
		fmt.Printf("geomean speedup vs seed: %.2fx, vs reference engine: %.2fx\n",
			rep.GeomeanSpeedupVsSeed, rep.GeomeanSpeedupVsRef)
	} else {
		fmt.Printf("geomean speedup vs reference engine: %.2fx\n", rep.GeomeanSpeedupVsRef)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// Command benchdiff measures the interpreter's execution engines on the
// CARAT kernel suite and records the results in a JSON file
// (BENCH_interp.json at the repo root).
//
// Modes:
//
//	benchdiff -o BENCH_interp.json        # full run: bench fast + reference, write JSON
//	benchdiff -quick                      # CI smoke: one run per kernel per engine,
//	                                      # verify bit-identical results, write nothing;
//	                                      # also runs a 10k-op allocator differential trace
//	benchdiff -mem -o BENCH_mem.json      # allocator benches: intrusive Buddy vs
//	                                      # ReferenceBuddy, plus contended magazines vs mutex
//	benchdiff -machine                    # sharded event-engine scaling curve at
//	                                      # 64-1024 simulated CPUs -> BENCH_machine.json
//
// The output file may contain a hand-pinned "seed" section (numbers
// captured before the fast path existed); benchdiff preserves it when
// rewriting the file and reports the geomean speedup against it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"sort"
	"testing"

	"repro/internal/interp"
	"repro/internal/passes"
	"repro/internal/workloads"
)

type entry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

type report struct {
	// Seed is the pinned pre-fast-path baseline; benchdiff never
	// overwrites it, only carries it forward.
	Seed                 map[string]entry `json:"seed,omitempty"`
	Fast                 map[string]entry `json:"fast"`
	Reference            map[string]entry `json:"reference"`
	Opt                  map[string]entry `json:"opt"`
	GeomeanSpeedupVsSeed float64          `json:"geomean_speedup_vs_seed,omitempty"`
	GeomeanSpeedupVsRef  float64          `json:"geomean_speedup_vs_reference,omitempty"`
	GeomeanSpeedupOpt    float64          `json:"geomean_speedup_opt_vs_fast,omitempty"`
	CPU                  string           `json:"cpu,omitempty"`
	Note                 string           `json:"note,omitempty"`
}

func benchKernel(k workloads.IRKernel, reference, optimize bool) entry {
	r := testing.Benchmark(func(b *testing.B) {
		m := k.Build()
		if optimize {
			if _, err := passes.Optimize(m); err != nil {
				b.Fatal(err)
			}
		}
		ip, err := interp.New(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// MaxSteps bounds cumulative steps across Calls, so the
			// counters reset each iteration.
			ip.Stats = interp.Stats{}
			var err error
			if reference {
				_, err = ip.ReferenceCall(k.Entry)
			} else {
				_, err = ip.Call(k.Entry)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return entry{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// quickCheck runs each kernel once per engine and requires bit-identical
// return values, Stats, and final heaps — a fast equivalence smoke for
// `make check`, with no timing thresholds.
func quickCheck() error {
	for _, k := range workloads.CARATSuite() {
		run := func(reference, optimize bool) (uint64, interp.Stats, interface{}, error) {
			m := k.Build()
			if optimize {
				if _, err := passes.Optimize(m); err != nil {
					return 0, interp.Stats{}, nil, err
				}
			}
			ip, err := interp.New(m)
			if err != nil {
				return 0, interp.Stats{}, nil, err
			}
			var ret uint64
			if reference {
				ret, err = ip.ReferenceCall(k.Entry)
			} else {
				ret, err = ip.Call(k.Entry)
			}
			return ret, ip.Stats, ip.Heap.Snapshot(), err
		}
		fr, fs, fh, ferr := run(false, false)
		rr, rs, rh, rerr := run(true, false)
		if ferr != nil || rerr != nil {
			return fmt.Errorf("%s: fast err %v, reference err %v", k.Name, ferr, rerr)
		}
		if fr != rr || fs != rs || !reflect.DeepEqual(fh, rh) {
			return fmt.Errorf("%s: engines diverge (ret %d vs %d)", k.Name, fr, rr)
		}
		if k.Want != 0 && fr != k.Want {
			return fmt.Errorf("%s: checksum %d, want %d", k.Name, fr, k.Want)
		}
		// The optimized module must stay bit-identical across engines
		// and preserve the pristine checksum.
		ofr, ofs, ofh, oferr := run(false, true)
		orr, ors, orh, orerr := run(true, true)
		if oferr != nil || orerr != nil {
			return fmt.Errorf("%s: optimized fast err %v, reference err %v", k.Name, oferr, orerr)
		}
		if ofr != orr || ofs != ors || !reflect.DeepEqual(ofh, orh) {
			return fmt.Errorf("%s: optimized engines diverge (ret %d vs %d)", k.Name, ofr, orr)
		}
		if ofr != fr {
			return fmt.Errorf("%s: optimizer changed checksum %d -> %d", k.Name, fr, ofr)
		}
		fmt.Printf("ok  %-14s ret=%d steps=%d cycles=%d opt-cycles=%d\n",
			k.Name, fr, fs.Steps, fs.Cycles, ofs.Cycles)
	}
	return nil
}

// geomean returns the geometric-mean ratio base[k]/meas[k] over the
// kernels present in both maps.
func geomean(base, meas map[string]entry) float64 {
	var sum float64
	n := 0
	for name, b := range base {
		m, ok := meas[name]
		if !ok || b.NsPerOp == 0 || m.NsPerOp == 0 {
			continue
		}
		sum += math.Log(float64(b.NsPerOp) / float64(m.NsPerOp))
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func main() {
	out := flag.String("o", "", "output file (default BENCH_interp.json, or BENCH_mem.json with -mem)")
	quick := flag.Bool("quick", false, "equivalence smoke only; measure nothing, write nothing")
	memMode := flag.Bool("mem", false, "benchmark the memory allocator instead of the interpreter")
	machineMode := flag.Bool("machine", false,
		"benchmark the sharded event engine at 64-1024 simulated CPUs instead of the interpreter")
	chaosSeed := flag.Uint64("chaos-seed", 11,
		"seed for the fault-injected allocator differential run by -quick")
	flag.Parse()

	if *quick {
		if err := quickCheck(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		if err := quickCheckMem(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		if err := quickCheckChaos(*chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	if *memMode {
		if *out == "" {
			*out = "BENCH_mem.json"
		}
		if err := runMem(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if *machineMode {
		if *out == "" {
			*out = "BENCH_machine.json"
		}
		if err := runMachine(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		*out = "BENCH_interp.json"
	}

	rep := report{
		Fast:      make(map[string]entry),
		Reference: make(map[string]entry),
		Opt:       make(map[string]entry),
		Note:      "ns_per_op are machine-dependent; the tracked claims are the geomeans and fast-path allocs_per_op",
	}
	// Carry the pinned seed baseline forward from an existing file.
	if prev, err := os.ReadFile(*out); err == nil {
		var old report
		if json.Unmarshal(prev, &old) == nil {
			rep.Seed = old.Seed
			rep.CPU = old.CPU
		}
	}

	names := make([]string, 0)
	for _, k := range workloads.CARATSuite() {
		names = append(names, k.Name)
		fmt.Printf("bench %-14s fast...", k.Name)
		rep.Fast[k.Name] = benchKernel(k, false, false)
		fmt.Printf(" %8d ns/op %2d allocs/op   reference...",
			rep.Fast[k.Name].NsPerOp, rep.Fast[k.Name].AllocsPerOp)
		rep.Reference[k.Name] = benchKernel(k, true, false)
		fmt.Printf(" %8d ns/op   opt...", rep.Reference[k.Name].NsPerOp)
		rep.Opt[k.Name] = benchKernel(k, false, true)
		fmt.Printf(" %8d ns/op\n", rep.Opt[k.Name].NsPerOp)
	}
	sort.Strings(names)

	rep.GeomeanSpeedupVsRef = round2(geomean(rep.Reference, rep.Fast))
	rep.GeomeanSpeedupOpt = round2(geomean(rep.Fast, rep.Opt))
	fmt.Printf("geomean speedup opt vs fast: %.2fx\n", rep.GeomeanSpeedupOpt)
	if len(rep.Seed) > 0 {
		rep.GeomeanSpeedupVsSeed = round2(geomean(rep.Seed, rep.Fast))
		fmt.Printf("geomean speedup vs seed: %.2fx, vs reference engine: %.2fx\n",
			rep.GeomeanSpeedupVsSeed, rep.GeomeanSpeedupVsRef)
	} else {
		fmt.Printf("geomean speedup vs reference engine: %.2fx\n", rep.GeomeanSpeedupVsRef)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

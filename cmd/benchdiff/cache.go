package main

// The -cache leg benchmarks the content-addressed result cache end to
// end on the experiment suite: an uncached reference run, a cold run
// populating a fresh cache, a warm run served from memory, a warm run
// through a fresh Cache over the same spill directory (a simulated
// process restart), and a coalescing leg proving K duplicate
// submissions of one key compute exactly once. Every cached leg's
// output must be byte-identical to the uncached reference; the tracked
// claims are that identity and the warm-vs-cold speedup.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exp"
)

// cacheBenchDriver is one experiment generator, on the stack the
// interweave CLI builds for it.
type cacheBenchDriver struct {
	name  string
	stack func() *core.Stack
	gen   func(s *core.Stack) *core.Table
}

// cacheBenchSuite lists the cached experiment drivers. small trims the
// sweep axes the way `interweave all` does, for the -quick smoke.
func cacheBenchSuite(small bool) []cacheBenchDriver {
	fig3 := core.DefaultFig3Config()
	fig6 := core.DefaultFig6Config()
	if small {
		fig3.Items = 400_000
		fig6.CPUCounts = []int{2, 8}
		fig6.Steps = 2
	}
	drivers := []cacheBenchDriver{
		{"carat", func() *core.Stack { return core.NewStack(1) }, (*core.Stack).CARAT},
		{"memstats", func() *core.Stack { return core.NewStack(1) }, (*core.Stack).MemStats},
		{"virtine", func() *core.Stack { return core.NewStack(1) }, (*core.Stack).Virtines},
		{"fig6", func() *core.Stack { return core.KNLStack(1) }, func(s *core.Stack) *core.Table { return s.Fig6(fig6) }},
	}
	if !small {
		drivers = append(drivers,
			cacheBenchDriver{"fig3", func() *core.Stack { return core.NewStack(16) }, func(s *core.Stack) *core.Table { return s.Fig3(fig3) }},
			cacheBenchDriver{"fig7", core.ServerStack, (*core.Stack).Fig7},
			cacheBenchDriver{"fig7-ablation", core.ServerStack, (*core.Stack).AblationSharingClasses},
		)
	}
	return drivers
}

// runCacheSuite regenerates every driver's table against c (nil = no
// cache) and returns the concatenated JSON plus the wall time.
func runCacheSuite(c *cache.Cache, small bool) (string, time.Duration) {
	var b strings.Builder
	start := time.Now()
	for _, d := range cacheBenchSuite(small) {
		s := d.stack()
		s.Cache = c
		b.WriteString(d.gen(s).JSON())
	}
	return b.String(), time.Since(start)
}

// coalescedLeg submits K duplicate computations of one key through a
// width-4 pool and reports the compute count (the exactly-once claim)
// and the wall time for all K callers.
func coalescedLeg() (callers int, computes uint64, wall time.Duration, err error) {
	const K = 32
	c := cache.New(cache.Config{})
	p := exp.New(4)
	key := core.NewStack(1).KeyEnc("benchdiff-coalesce").Sum()
	errs := make([]error, K)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.GetOrCompute(key, p, false, func() ([]byte, error) {
				// A real compute: one full MemStats regeneration, uncached.
				return []byte(core.NewStack(1).MemStats().JSON()), nil
			})
		}(i)
	}
	wg.Wait()
	wall = time.Since(start)
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, e
		}
	}
	st := c.Stats()
	if st.Computes != 1 {
		return 0, 0, 0, fmt.Errorf("coalesced leg: %d computes for %d duplicate callers, want exactly 1", st.Computes, K)
	}
	return K, st.Computes, wall, nil
}

type cacheLeg struct {
	WallMs    float64 `json:"wall_ms"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	SpillHits uint64  `json:"spill_hits"`
	Computes  uint64  `json:"computes"`
}

type cacheReport struct {
	Uncached          cacheLeg `json:"uncached"`
	Cold              cacheLeg `json:"cold"`
	WarmMem           cacheLeg `json:"warm_mem"`
	WarmDisk          cacheLeg `json:"warm_disk"`
	SpeedupWarmMem    float64  `json:"speedup_warm_mem_vs_cold"`
	SpeedupWarmDisk   float64  `json:"speedup_warm_disk_vs_cold"`
	CoalescedCallers  int      `json:"coalesced_callers"`
	CoalescedComputes uint64   `json:"coalesced_computes"`
	CoalescedWallMs   float64  `json:"coalesced_wall_ms"`
	GOMAXPROCS        int      `json:"gomaxprocs"`
	CPU               string   `json:"cpu,omitempty"`
	Note              string   `json:"note"`
}

// legStats converts a Stats delta into the recorded leg counters.
func legStats(wall time.Duration, before, after cache.Stats) cacheLeg {
	return cacheLeg{
		WallMs:    round2(float64(wall.Microseconds()) / 1e3),
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		SpillHits: after.SpillHits - before.SpillHits,
		Computes:  after.Computes - before.Computes,
	}
}

func runCacheBench(out string) error {
	dir, err := os.MkdirTemp("", "benchdiff-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Printf("bench cache uncached...")
	base, baseT := runCacheSuite(nil, false)
	fmt.Printf(" %7.0f ms   cold...", float64(baseT.Microseconds())/1e3)

	c1 := cache.New(cache.Config{Dir: dir})
	cold, coldT := runCacheSuite(c1, false)
	coldSt := c1.Stats()
	if cold != base {
		return fmt.Errorf("cache bench: cold cached output differs from uncached")
	}
	fmt.Printf(" %7.0f ms   warm-mem...", float64(coldT.Microseconds())/1e3)

	warm, warmT := runCacheSuite(c1, false)
	warmSt := c1.Stats()
	if warm != base {
		return fmt.Errorf("cache bench: warm (memory) output differs from uncached")
	}
	fmt.Printf(" %7.0f ms   warm-disk...", float64(warmT.Microseconds())/1e3)

	// Process restart: a fresh Cache over the same spill directory.
	c2 := cache.New(cache.Config{Dir: dir})
	disk, diskT := runCacheSuite(c2, false)
	diskSt := c2.Stats()
	if disk != base {
		return fmt.Errorf("cache bench: warm (disk restart) output differs from uncached")
	}
	if diskSt.SpillHits == 0 {
		return fmt.Errorf("cache bench: restart leg never read the spill tier")
	}
	fmt.Printf(" %7.0f ms\n", float64(diskT.Microseconds())/1e3)

	callers, computes, coWall, err := coalescedLeg()
	if err != nil {
		return err
	}

	rep := cacheReport{
		Uncached:          cacheLeg{WallMs: round2(float64(baseT.Microseconds()) / 1e3)},
		Cold:              legStats(coldT, cache.Stats{}, coldSt),
		WarmMem:           legStats(warmT, coldSt, warmSt),
		WarmDisk:          legStats(diskT, cache.Stats{}, diskSt),
		SpeedupWarmMem:    round2(float64(coldT) / float64(warmT)),
		SpeedupWarmDisk:   round2(float64(coldT) / float64(diskT)),
		CoalescedCallers:  callers,
		CoalescedComputes: computes,
		CoalescedWallMs:   round2(float64(coWall.Microseconds()) / 1e3),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Note: "wall-clock ms are machine-dependent; the tracked claims are byte-identical " +
			"output on every cached leg, warm-vs-cold speedup >= 5x, and exactly one compute " +
			"for the coalesced duplicate callers",
	}
	// Carry the host CPU tag forward from an existing file, as the other
	// legs do for their pinned sections.
	if prev, err := os.ReadFile(out); err == nil {
		var old cacheReport
		if json.Unmarshal(prev, &old) == nil {
			rep.CPU = old.CPU
		}
	}
	fmt.Printf("cache speedup warm-mem %.2fx, warm-disk %.2fx; coalesced %d callers -> %d compute in %.1f ms\n",
		rep.SpeedupWarmMem, rep.SpeedupWarmDisk, callers, computes, rep.CoalescedWallMs)
	if rep.SpeedupWarmMem < 5 {
		return fmt.Errorf("cache bench: warm-vs-cold speedup %.2fx below the 5x claim", rep.SpeedupWarmMem)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// quickCheckCache is the `-cache -quick` smoke for `make check`: on the
// trimmed suite, cold and warm cached output must be byte-identical to
// uncached output, the warm leg must compute nothing, a restart leg must
// be served from the spill tier, and duplicate submissions must
// coalesce to one compute.
func quickCheckCache() error {
	dir, err := os.MkdirTemp("", "benchdiff-cache-quick-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	base, _ := runCacheSuite(nil, true)
	c1 := cache.New(cache.Config{Dir: dir})
	if cold, _ := runCacheSuite(c1, true); cold != base {
		return fmt.Errorf("cache quick: cold cached output differs from uncached")
	}
	coldSt := c1.Stats()
	if coldSt.Computes == 0 {
		return fmt.Errorf("cache quick: cold leg computed nothing through the cache")
	}
	if warm, _ := runCacheSuite(c1, true); warm != base {
		return fmt.Errorf("cache quick: warm cached output differs from uncached")
	}
	warmSt := c1.Stats()
	if warmSt.Computes != coldSt.Computes {
		return fmt.Errorf("cache quick: warm leg recomputed %d cells", warmSt.Computes-coldSt.Computes)
	}
	c2 := cache.New(cache.Config{Dir: dir})
	if disk, _ := runCacheSuite(c2, true); disk != base {
		return fmt.Errorf("cache quick: restart output differs from uncached")
	}
	if st := c2.Stats(); st.SpillHits == 0 {
		return fmt.Errorf("cache quick: restart leg never read the spill tier")
	}
	callers, computes, _, err := coalescedLeg()
	if err != nil {
		return err
	}
	fmt.Printf("ok  cache cold/warm/restart byte-identical (%d computes), %d duplicates -> %d compute\n",
		coldSt.Computes, callers, computes)
	return nil
}

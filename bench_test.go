// Package repro's root benchmarks regenerate every table and figure of
// the paper as testing.B benchmarks, one per experiment, plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark
// reports the experiment's headline metric through b.ReportMetric, so
// `go test -bench=. -benchmem` prints the paper-vs-measured story.
package repro

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/heartbeat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/omp"
	"repro/internal/passes"
	"repro/internal/pik"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/virtine"
	"repro/internal/workloads"

	caratrt "repro/internal/carat"
)

// BenchmarkE1_NautilusPrimitives regenerates §III (E1): primitive and
// application comparison vs the commodity stack.
func BenchmarkE1_NautilusPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewStack(16)
		tab := s.Primitives()
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig3_HeartbeatRate regenerates Fig. 3 (E2): achieved vs
// target heartbeat rate at 16 CPUs.
func BenchmarkFig3_HeartbeatRate(b *testing.B) {
	for _, us := range []float64{20, 100} {
		for _, sub := range []heartbeat.Substrate{
			heartbeat.SubstrateNautilusIPI, heartbeat.SubstrateLinuxSignals,
		} {
			b.Run(sub.String()+"/"+itoa(int(us))+"us", func(b *testing.B) {
				mdl := model.Default()
				var achieved float64
				for i := 0; i < b.N; i++ {
					eng := sim.NewEngine()
					m := machine.New(eng, mdl, machine.Topology{Sockets: 1, CoresPerSocket: 16}, 42)
					cfg := heartbeat.DefaultConfig()
					cfg.Substrate = sub
					cfg.PeriodCycles = mdl.MicrosToCycles(us)
					rt := heartbeat.New(m, cfg)
					rt.Run(2_000_000, 40, 64)
					achieved = stats.Mean(rt.AchievedRates())
				}
				target := 1e6 / float64(mdl.MicrosToCycles(us))
				b.ReportMetric(achieved/target, "achieved/target")
			})
		}
	}
}

// BenchmarkE3_HeartbeatOverheads regenerates the §IV-B overhead text
// claim (13-22% Linux vs ≤4.9% Nautilus).
func BenchmarkE3_HeartbeatOverheads(b *testing.B) {
	for _, sub := range []heartbeat.Substrate{
		heartbeat.SubstrateNautilusIPI, heartbeat.SubstrateLinuxPolling,
	} {
		b.Run(sub.String(), func(b *testing.B) {
			mdl := model.Default()
			var ovh float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				m := machine.New(eng, mdl, machine.Topology{Sockets: 1, CoresPerSocket: 16}, 42)
				cfg := heartbeat.DefaultConfig()
				cfg.Substrate = sub
				rt := heartbeat.New(m, cfg)
				rt.Run(4_000_000, 40, 64)
				ovh = rt.OverheadFraction()
			}
			b.ReportMetric(ovh*100, "overhead%")
		})
	}
}

// BenchmarkFig4_ContextSwitch regenerates Fig. 4 (E4): the full context
// switch cost table on the KNL-like platform.
func BenchmarkFig4_ContextSwitch(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = core.KNLStack(1).Fig4()
	}
	_ = tab
}

// BenchmarkE5_CARAT regenerates the §IV-A overhead table (naive vs
// hoisted guards, geomean <6%).
func BenchmarkE5_CARAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.NewStack(1).CARAT()
		if len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkE5_CARATGuardAblation isolates the hoisting design choice:
// the same kernel with no guards, naive guards, and hoisted guards.
func BenchmarkE5_CARATGuardAblation(b *testing.B) {
	k := workloads.CARATSuite()[0] // stream-triad
	for _, mode := range []string{"baseline", "naive", "hoisted"} {
		b.Run(mode, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m := k.Build()
				switch mode {
				case "naive":
					if err := passes.RunAll(m, &passes.CARATInject{}); err != nil {
						b.Fatal(err)
					}
				case "hoisted":
					if err := passes.RunAll(m, &passes.CARATInject{}, &passes.CARATHoist{}); err != nil {
						b.Fatal(err)
					}
				}
				ip, err := interp.New(m)
				if err != nil {
					b.Fatal(err)
				}
				tb := caratrt.NewTable()
				ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
				ip.Hooks.GuardRegion = tb.GuardRegion
				ip.Hooks.TrackAlloc = tb.TrackAlloc
				ip.Hooks.TrackFree = tb.TrackFree
				ip.Hooks.TrackEsc = tb.TrackEscape
				if _, err := ip.Call(k.Entry); err != nil {
					b.Fatal(err)
				}
				cycles = ip.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkFig6_KernelOpenMP regenerates Fig. 6 (E6): RTK/PIK/CCK
// relative to Linux for BT and SP across CPU counts.
func BenchmarkFig6_KernelOpenMP(b *testing.B) {
	cfg := core.Fig6Config{
		CPUCounts: []int{8, 32, 64},
		Kernels:   core.DefaultFig6Config().Kernels,
		Steps:     3,
	}
	for i := 0; i < b.N; i++ {
		tab := core.KNLStack(1).Fig6(cfg)
		if len(tab.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig6_ModeAblation times a single BT run per OpenMP mode.
func BenchmarkFig6_ModeAblation(b *testing.B) {
	k := workloads.BT()
	k.Steps = 3
	for _, mode := range []omp.Mode{omp.ModeLinux, omp.ModeRTK, omp.ModePIK, omp.ModeCCK} {
		b.Run(mode.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: 32}, 42)
				rt := omp.New(m, mode, 42)
				cycles = rt.RunKernel(k)
			}
			b.ReportMetric(float64(cycles)/1e6, "sim-Mcycles")
		})
	}
}

// BenchmarkFig7_CoherenceDeactivation regenerates Fig. 7 (E7): per-
// benchmark speedup and interconnect energy with deactivation.
func BenchmarkFig7_CoherenceDeactivation(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		tab = core.ServerStack().Fig7()
	}
	_ = tab
}

// BenchmarkFig7_ClassAblation isolates each sharing class (DESIGN.md
// ablation: private vs read-only vs producer-consumer deactivation).
func BenchmarkFig7_ClassAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.ServerStack().AblationSharingClasses()
		if len(tab.Rows) != 4 {
			b.Fatal("bad ablation table")
		}
	}
}

// BenchmarkE11_CoherenceScaleSweep regenerates the §V-B scale claim.
func BenchmarkE11_CoherenceScaleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.ServerStack().Fig7Sweep()
		if len(tab.Rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkE8_VirtineStartPaths regenerates §IV-D (E8): cold vs snapshot
// vs pooled virtine invocation.
func BenchmarkE8_VirtineStartPaths(b *testing.B) {
	mdl := model.Default()
	for _, path := range []virtine.StartPath{
		virtine.StartCold, virtine.StartSnapshot, virtine.StartPooled,
	} {
		b.Run(path.String(), func(b *testing.B) {
			w := virtine.NewWasp(mdl)
			sp := fibSpec()
			// Prime non-cold paths.
			if path != virtine.StartCold {
				if _, _, err := w.Invoke(sp, path, 10); err != nil {
					b.Fatal(err)
				}
			}
			var startup int64
			for i := 0; i < b.N; i++ {
				_, lat, err := w.Invoke(sp, path, 10)
				if err != nil {
					b.Fatal(err)
				}
				startup = lat.StartupCycles
				if path == virtine.StartPooled {
					w.WarmPool(sp, 1)
				}
			}
			b.ReportMetric(mdl.CyclesToMicros(startup), "startup-µs")
		})
	}
}

// BenchmarkE9_PipelineInterrupts regenerates §V-D (E9): IDT vs pipeline
// delivery latency.
func BenchmarkE9_PipelineInterrupts(b *testing.B) {
	var speedup float64
	cfg := pipeline.DefaultConfig()
	cfg.Samples = 2000
	for i := 0; i < b.N; i++ {
		r := pipeline.Compare(model.Default(), cfg)
		speedup = r.SpeedupMean
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkE10_Blending regenerates §V-C (E10): the blended device
// driver comparison.
func BenchmarkE10_Blending(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.NewStack(1).Blending()
		if len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblation_HeartbeatSubstrates compares all three heartbeat
// signaling mechanisms head-to-head (DESIGN.md ablation).
func BenchmarkAblation_HeartbeatSubstrates(b *testing.B) {
	for _, sub := range []heartbeat.Substrate{
		heartbeat.SubstrateNautilusIPI,
		heartbeat.SubstrateLinuxSignals,
		heartbeat.SubstrateLinuxPolling,
	} {
		b.Run(sub.String(), func(b *testing.B) {
			mdl := model.Default()
			var done float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				m := machine.New(eng, mdl, machine.Topology{Sockets: 1, CoresPerSocket: 16}, 42)
				cfg := heartbeat.DefaultConfig()
				cfg.Substrate = sub
				rt := heartbeat.New(m, cfg)
				rt.Run(2_000_000, 40, 64)
				done = float64(rt.DoneAt())
			}
			b.ReportMetric(done/1e6, "sim-Mcycles")
		})
	}
}

// BenchmarkAblation_TimingInjection sweeps the compiler-timing check
// interval against achieved preemption granularity (DESIGN.md ablation).
func BenchmarkAblation_TimingInjection(b *testing.B) {
	for _, target := range []int64{200, 1000, 5000} {
		b.Run("target-"+itoa(int(target)), func(b *testing.B) {
			var maxGap int64
			for i := 0; i < b.N; i++ {
				k := workloads.CARATSuite()[0]
				m := k.Build()
				if err := passes.RunAll(m, &passes.TimingInject{TargetCycles: target}); err != nil {
					b.Fatal(err)
				}
				ip, err := interp.New(m)
				if err != nil {
					b.Fatal(err)
				}
				var last int64
				maxGap = 0
				ip.Hooks.YieldCheck = func(elapsed int64) int64 {
					if g := elapsed - last; g > maxGap {
						maxGap = g
					}
					last = elapsed
					return 6
				}
				if _, err := ip.Call(k.Entry); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(maxGap), "max-gap-cycles")
		})
	}
}

// BenchmarkInterpKernel measures the interpreter fast path (compiled
// instruction streams + paged heap + pooled frames) on each CARAT-suite
// kernel. Stats are reset per iteration because MaxSteps bounds the
// cumulative step count across Calls on one Interp.
func BenchmarkInterpKernel(b *testing.B) {
	for _, k := range workloads.CARATSuite() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			ip, err := interp.New(k.Build())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ip.Stats = interp.Stats{}
				if _, err := ip.Call(k.Entry); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpKernelReference runs the same kernels through the
// reference tree-walking engine — the before/after comparison the
// fast-path speedup claims are made against.
func BenchmarkInterpKernelReference(b *testing.B) {
	for _, k := range workloads.CARATSuite() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			ip, err := interp.New(k.Build())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ip.Stats = interp.Stats{}
				if _, err := ip.ReferenceCall(k.Entry); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fibSpec builds the Fig. 5 fib virtine for benches.
func fibSpec() *virtine.Spec {
	return &virtine.Spec{Mod: fibModule(), Entry: "fib", Boot: virtine.Boot64}
}

// fibModule builds the paper's Fig. 5 example for the virtine benches.
func fibModule() *ir.Module {
	m := ir.NewModule("fib")
	f := m.NewFunction("fib", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	two := b.Const(2)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLT, n, two), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	one := b.Const(1)
	x := b.Call("fib", b.Sub(n, one))
	y := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(x, y))
	return m
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkExt_FarMemory regenerates the §V-C far-memory extension:
// page swapping vs object blending.
func BenchmarkExt_FarMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.NewStack(1).FarMemory()
		if len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkExt_Consistency regenerates the §V-B selective-fencing
// extension.
func BenchmarkExt_Consistency(b *testing.B) {
	var full, sel int64
	for i := 0; i < b.N; i++ {
		full, sel = coherence.FenceComparison(1000, 8, 24)
	}
	b.ReportMetric(float64(full)/float64(sel), "stall-ratio")
}

// BenchmarkExt_CrossISA regenerates the §V-F open-hardware exploration.
func BenchmarkExt_CrossISA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.NewStack(16).CrossISA()
		if len(tab.Rows) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkExt_PIKLifecycle regenerates the enhanced-CARAT PIK pipeline:
// build, attest, verify, load, run.
func BenchmarkExt_PIKLifecycle(b *testing.B) {
	key := []byte("bench-key")
	for i := 0; i < b.N; i++ {
		m := ir.NewModule("bench")
		f := m.NewFunction("main", 0)
		bb := ir.NewBuilder(f)
		arr := bb.Alloc(1024)
		bb.CountingLoop(0, 128, 1, func(iv ir.Reg) {
			bb.Store(bb.Add(arr, bb.Mul(iv, bb.Const(8))), 0, iv)
		})
		bb.Free(arr)
		bb.Ret(ir.NoReg)
		img, err := pik.BuildImage(m, key)
		if err != nil {
			b.Fatal(err)
		}
		k, err := pik.NewKernel(key)
		if err != nil {
			b.Fatal(err)
		}
		p, err := k.Load("bench", img)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Call("main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_Paging regenerates the translation-regime comparison.
func BenchmarkExt_Paging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.NewStack(1).Paging()
		if len(tab.Rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkExt_Schedules regenerates the loop-schedule comparison.
func BenchmarkExt_Schedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := core.NewStack(1).Schedules(16)
		if len(tab.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkParallelRunner measures the deterministic experiment-cell
// pool end-to-end on the CARAT multi-benchmark loop: one cell per
// kernel, sequential (-parallel 1) vs GOMAXPROCS-wide (-parallel 0).
// Output tables are bit-identical in both modes; only wall-clock moves.
func BenchmarkParallelRunner(b *testing.B) {
	for _, cfg := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"gomaxprocs", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewStack(1)
				s.Parallel = cfg.par
				if tab := s.CARAT(); len(tab.Rows) == 0 {
					b.Fatal("empty")
				}
			}
		})
	}
}

// BenchmarkExpPoolOverhead isolates the pool's own cost: dispatching
// trivial cells through the bounded worker pool with pre-split RNGs.
func BenchmarkExpPoolOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				root := sim.NewRNG(42)
				out, err := exp.MapRNG(exp.New(workers), root, 256,
					func(_ int, rng *sim.RNG) (uint64, error) { return rng.Uint64(), nil })
				if err != nil || len(out) != 256 {
					b.Fatal(err)
				}
			}
		})
	}
}

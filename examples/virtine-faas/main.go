// Virtine FaaS example: a tiny Function-as-a-Service gateway (§IV-D).
// Functions are compiled to IR, registered with the Wasp microhypervisor,
// and every request executes in its own isolated virtine. Pooling keeps
// invocation latency far below process- or container-grade isolation.
//
//	go run ./examples/virtine-faas
package main

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/virtine"
)

// buildHash compiles a small integer-hash "cloud function":
// h(x) = mix of multiplies and xors.
func buildHash() *ir.Module {
	m := ir.NewModule("hashsvc")
	f := m.NewFunction("hash", 1)
	b := ir.NewBuilder(f)
	x := b.Param(0)
	h := b.Mov(x)
	c1 := b.Const(0x9E3779B1)
	c2 := b.Const(0x85EBCA77)
	for i := 0; i < 4; i++ {
		h = b.Xor(h, b.Shr(h, b.Const(13)))
		h = b.Mul(h, c1)
		h = b.Xor(h, b.Shr(h, b.Const(7)))
		h = b.Add(h, c2)
	}
	b.Ret(h)
	return m
}

// buildFib compiles the paper's Fig. 5 example.
func buildFib() *ir.Module {
	m := ir.NewModule("fibsvc")
	f := m.NewFunction("fib", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	two := b.Const(2)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLT, n, two), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	one := b.Const(1)
	x := b.Call("fib", b.Sub(n, one))
	y := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(x, y))
	return m
}

func main() {
	mdl := model.Default()
	w := virtine.NewWasp(mdl)
	w.PoolTarget = 8

	// Register two functions with bespoke contexts: the integer hash
	// needs almost nothing (16-bit context, no FP, no I/O); fib wants a
	// full long-mode context.
	hash := &virtine.Spec{Mod: buildHash(), Entry: "hash", Boot: virtine.Boot16}
	fib := &virtine.Spec{Mod: buildFib(), Entry: "fib", Boot: virtine.Boot64}
	w.WarmPool(hash, 8)
	w.WarmPool(fib, 8)

	fmt.Println("virtine FaaS gateway: 100 requests per function, pooled starts")
	fmt.Println()
	for _, svc := range []struct {
		name string
		spec *virtine.Spec
		arg  uint64
	}{
		{"hash (bespoke 16-bit)", hash, 123456789},
		{"fib(18) (long mode)", fib, 18},
	} {
		var lats []float64
		var last uint64
		for i := 0; i < 100; i++ {
			ret, lat, err := w.Invoke(svc.spec, virtine.StartPooled, svc.arg)
			if err != nil {
				panic(err)
			}
			last = ret
			lats = append(lats, mdl.CyclesToMicros(lat.Total()))
		}
		s := stats.Summarize(lats)
		fmt.Printf("%-22s result=%-12d mean=%6.1fµs p99=%6.1fµs\n",
			svc.name, last, s.Mean, s.P99)
	}

	fmt.Println()
	fmt.Printf("baselines: fork/exec %.0fµs, container %.0fµs\n",
		mdl.CyclesToMicros(w.ProcessBaselineCycles()),
		mdl.CyclesToMicros(w.ContainerBaselineCycles()))
	fmt.Printf("pool stats: %d invocations, %d pool hits, %d cold boots\n",
		w.Stats.Invocations, w.Stats.PoolHits, w.Stats.ColdBoots)
}

// CARAT compiler example: watch the interweaving passes transform a
// kernel. The program builds a small array-sum function, prints the IR,
// injects CARAT guards and tracking, prints it again, hoists the guards
// out of the loop, then lets the dataflow layer delete the checks it can
// prove redundant, and executes all four versions to show the overhead
// collapse (§IV-A). The same module is what `interweave lint
// examples/...` checks statically.
//
//	go run ./examples/carat-compiler
package main

import (
	"fmt"

	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/passes"
	"repro/internal/workloads"
)

func buildKernel() *ir.Module {
	return workloads.SumsqDemo()
}

func run(m *ir.Module) (uint64, int64, int64) {
	ip, err := interp.New(m)
	if err != nil {
		panic(err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	got, err := ip.Call("sumsq")
	if err != nil {
		panic(err)
	}
	if tb.Violations != 0 {
		panic("spurious protection violations")
	}
	return got, ip.Stats.Cycles, ip.Stats.Guards
}

func main() {
	base := buildKernel()
	fmt.Println("--- original IR (excerpt) ---")
	printExcerpt(base.Funcs["sumsq"], 14)
	baseVal, baseCyc, _ := run(base)

	naive := buildKernel()
	inj := &passes.CARATInject{}
	if err := passes.RunAll(naive, inj); err != nil {
		panic(err)
	}
	fmt.Printf("\n--- after carat-inject: %d guards, %d tracking ops ---\n",
		inj.GuardsInserted, inj.TracksInserted)
	printExcerpt(naive.Funcs["sumsq"], 18)
	naiveVal, naiveCyc, naiveGuards := run(naive)

	hoisted := buildKernel()
	h := &passes.CARATHoist{}
	if err := passes.RunAll(hoisted, &passes.CARATInject{}, h); err != nil {
		panic(err)
	}
	fmt.Printf("\n--- after carat-hoist: %d region-hoisted, %d invariant-hoisted, %d deduped ---\n",
		h.HoistedRegion, h.HoistedInvariant, h.DedupedInBlock)
	printExcerpt(hoisted.Funcs["sumsq"], 18)
	hoistVal, hoistCyc, hoistGuards := run(hoisted)

	elim := buildKernel()
	e := &passes.CARATElim{}
	if err := passes.RunAll(elim, &passes.CARATInject{}, &passes.CARATHoist{}, e); err != nil {
		panic(err)
	}
	fmt.Printf("\n--- after carat-elim: %d guards deleted (%d region), %d escapes deleted ---\n",
		e.GuardsRemoved, e.RegionRemoved, e.EscapesRemoved)
	printExcerpt(elim.Funcs["sumsq"], 18)
	elimVal, elimCyc, elimGuards := run(elim)

	if baseVal != naiveVal || naiveVal != hoistVal || hoistVal != elimVal {
		panic("instrumentation changed semantics!")
	}
	fmt.Printf("\nresult %d in all four versions\n", baseVal)
	fmt.Printf("%-10s %12s %14s %10s\n", "version", "cycles", "dyn guards", "overhead")
	fmt.Printf("%-10s %12d %14s %10s\n", "base", baseCyc, "-", "-")
	fmt.Printf("%-10s %12d %14d %9.1f%%\n", "naive", naiveCyc, naiveGuards,
		100*float64(naiveCyc-baseCyc)/float64(baseCyc))
	fmt.Printf("%-10s %12d %14d %9.1f%%\n", "hoisted", hoistCyc, hoistGuards,
		100*float64(hoistCyc-baseCyc)/float64(baseCyc))
	fmt.Printf("%-10s %12d %14d %9.1f%%\n", "elim", elimCyc, elimGuards,
		100*float64(elimCyc-baseCyc)/float64(baseCyc))
}

// printExcerpt prints the first n lines of a function's IR.
func printExcerpt(f *ir.Function, n int) {
	text := ir.Format(f)
	count := 0
	for _, line := range splitLines(text) {
		fmt.Println(line)
		count++
		if count >= n {
			fmt.Println("  ...")
			return
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

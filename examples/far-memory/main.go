// Far-memory example (§V-C): compare page-granularity transparent
// swapping against compiler-blended object-granularity placement under a
// skewed workload whose footprint exceeds local memory.
//
//	go run ./examples/far-memory
package main

import (
	"fmt"

	"repro/internal/farmem"
	"repro/internal/mem"
	"repro/internal/sim"
)

func run(m farmem.Manager, objSize uint64, seed uint64) *farmem.Stats {
	const objects = 2048
	const accesses = 100_000
	rng := sim.NewRNG(seed)
	bases := make([]mem.Addr, objects)
	for i := range bases {
		bases[i] = mem.Addr(uint64(i) * 4096) // one object per page
		m.Register(bases[i], objSize)
	}
	hot := objects / 10
	for i := 0; i < accesses; i++ {
		idx := rng.Intn(objects)
		if rng.Float64() < 0.8 {
			idx = rng.Intn(hot)
		}
		m.Access(bases[idx] + mem.Addr(rng.Int63n(int64(objSize))))
	}
	return m.Stats()
}

func main() {
	cfg := farmem.DefaultConfig()
	cfg.LocalCapacity = 512 << 10
	fmt.Println("far memory: 2048 objects, 80/20 skew, 512 KiB local, 3µs RTT")
	fmt.Println()
	fmt.Printf("%-8s %-8s %14s %10s %14s %12s\n",
		"objsize", "design", "mean lat (cyc)", "faults", "traffic (MB)", "stall share")
	for _, objSize := range []uint64{128, 512, 2048} {
		for _, d := range []struct {
			name string
			m    farmem.Manager
		}{
			{"pages", farmem.NewPageSwapper(cfg)},
			{"objects", farmem.NewObjectBlender(cfg)},
		} {
			st := run(d.m, objSize, 11)
			traffic := float64(st.BytesIn+st.BytesOut) / (1 << 20)
			stall := float64(st.StallCycles) / float64(st.AccessCycles)
			fmt.Printf("%-8d %-8s %14.0f %10d %14.1f %11.0f%%\n",
				objSize, d.name, st.MeanLatency(), st.Faults, traffic, stall*100)
		}
	}
	fmt.Println("\nsub-page blending moves only the objects the program uses;")
	fmt.Println("page swapping drags each hot object's 4 KiB page across the wire.")
}

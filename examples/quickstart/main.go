// Quickstart: build an interwoven stack and regenerate two of the
// paper's headline results in a few lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	fmt.Println("Interweave quickstart: two headline results")
	fmt.Println()

	// 1. Compiler-based timing (§IV-C, Fig. 4): on a KNL-like machine,
	// compiler-timed fibers switch contexts several times cheaper than
	// hardware-timer threads, with Linux's ~5000-cycle switch as the
	// baseline.
	knl := core.KNLStack(1)
	fmt.Println(knl.Fig4())

	// 2. Pipeline interrupts (§V-D): delivering a simple interrupt
	// through branch-prediction logic instead of IDT dispatch is
	// 100-1000x faster.
	fmt.Println(core.NewStack(1).Pipeline())
}

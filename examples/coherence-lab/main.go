// Coherence lab: classify your own data structures and see what
// selective coherence deactivation (§V-B) does to a producer/consumer
// pipeline on a dual-socket server — latency, traffic, and interconnect
// energy, with the reactive MESI protocol as the baseline.
//
//	go run ./examples/coherence-lab
package main

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/mem"
)

// pipelineWorkload: stage 0 cores produce frames into per-pair exchange
// buffers; stage 1 cores consume and fold into private accumulators,
// consulting a read-only config table.
func pipelineWorkload(s *coherence.System, rounds int) {
	n := s.Cores()
	half := n / 2
	const frame = 32 // lines per frame

	cfgBase := mem.Addr(0x1000_0000)
	s.Classify(cfgBase, 1<<20, coherence.ClassReadOnly, -1)
	for c := 0; c < n; c++ {
		s.Classify(mem.Addr(0x4000_0000)+mem.Addr(c)*(1<<20), 1<<20, coherence.ClassPrivate, -1)
	}
	for p := 0; p < half; p++ {
		base := mem.Addr(0x8000_0000) + mem.Addr(p)*(1<<16)
		s.Classify(base, frame*64, coherence.ClassProducerConsumer, p)
	}

	for r := 0; r < rounds; r++ {
		for p := 0; p < half; p++ {
			cons := half + p
			buf := mem.Addr(0x8000_0000) + mem.Addr(p)*(1<<16)
			priv := mem.Addr(0x4000_0000) + mem.Addr(cons)*(1<<20)
			for l := 0; l < frame; l++ {
				a := buf + mem.Addr(l*64)
				s.Access(p, cfgBase+mem.Addr((r*frame+l)%1024*64), false)
				s.Access(p, a, true)     // produce
				s.Access(cons, a, false) // consume
				s.Access(cons, priv+mem.Addr((r%256)*64), true)
			}
		}
	}
}

func main() {
	run := func(deact bool) *coherence.System {
		cfg := coherence.DefaultConfig() // 2 x 12 cores, 3.3 GHz class
		cfg.Deactivation = deact
		s := coherence.New(cfg)
		pipelineWorkload(s, 400)
		return s
	}
	base := run(false)
	fast := run(true)

	fmt.Println("producer/consumer pipeline on 2x12-core server, 400 rounds")
	fmt.Println()
	fmt.Printf("%-28s %14s %14s\n", "metric", "reactive MESI", "deactivated")
	row := func(name string, a, b any) { fmt.Printf("%-28s %14v %14v\n", name, a, b) }
	row("total cycles (M)", base.Stats.SumCycles()/1e6, fast.Stats.SumCycles()/1e6)
	row("directory lookups", base.Stats.DirLookups, fast.Stats.DirLookups)
	row("invalidations", base.Stats.Invalidations, fast.Stats.Invalidations)
	row("owner forwards (3-hop)", base.Stats.OwnerForwards, fast.Stats.OwnerForwards)
	row("direct steers (2-hop)", base.Stats.DirectSteers, fast.Stats.DirectSteers)
	row("mesh hops (K)", base.Stats.Hops/1000, fast.Stats.Hops/1000)
	row("interconnect energy (nJ)", int64(base.Stats.InterconnectPJ/1000), int64(fast.Stats.InterconnectPJ/1000))

	sp := float64(base.Stats.SumCycles()) / float64(fast.Stats.SumCycles())
	en := 1 - fast.Stats.InterconnectPJ/base.Stats.InterconnectPJ
	fmt.Printf("\nspeedup %.2fx, interconnect energy reduction %.0f%%\n", sp, en*100)
}

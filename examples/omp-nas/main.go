// Kernel OpenMP example (§V-A): run the NAS BT- and SP-shaped kernels
// under all four OpenMP execution paths — user-level Linux, runtime-in-
// kernel (RTK), process-in-kernel (PIK), and custom compilation for
// kernel (CCK) — across CPU counts, reproducing the shape of Fig. 6.
//
//	go run ./examples/omp-nas
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/omp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	kernels := []workloads.NASKernel{workloads.BT(), workloads.SP()}
	cpuCounts := []int{4, 16, 64}

	fmt.Println("NAS-shaped kernels under four OpenMP paths (KNL-like, relative to Linux)")
	fmt.Println()
	fmt.Printf("%-4s %5s %14s %6s %6s %6s\n", "kern", "CPUs", "linux (Mcyc)", "RTK", "PIK", "CCK")
	for _, k := range kernels {
		k.Steps = 6
		for _, cpus := range cpuCounts {
			times := map[omp.Mode]int64{}
			for _, mode := range []omp.Mode{omp.ModeLinux, omp.ModeRTK, omp.ModePIK, omp.ModeCCK} {
				eng := sim.NewEngine()
				m := machine.New(eng, model.KNL(),
					machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 42)
				rt := omp.New(m, mode, 42)
				times[mode] = rt.RunKernel(k)
			}
			lx := float64(times[omp.ModeLinux])
			fmt.Printf("%-4s %5d %14.1f %6.2f %6.2f %6.2f\n",
				k.Name, cpus, lx/1e6,
				lx/float64(times[omp.ModeRTK]),
				lx/float64(times[omp.ModePIK]),
				lx/float64(times[omp.ModeCCK]))
		}
	}
	fmt.Println("\nvalues > 1.00 beat the Linux OpenMP baseline (paper: ~22% RTK geomean)")
}

// PIK example (§IV-A, enhanced CARAT): compile a "user program" to IR,
// transform it with the CARAT passes, cryptographically attest it, and
// run it *inside the kernel* at physical addresses — with protection
// enforced by compiler-injected guards instead of paging. Then watch the
// kernel defragment the process's memory behind its back, and watch a
// malicious process get killed by a guard.
//
//	go run ./examples/pik-process
package main

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/pik"
)

var platformKey = []byte("example-platform-key")

func buildApp() *ir.Module {
	m := ir.NewModule("app")
	// setup(): build a small linked structure and return its root.
	setup := m.NewFunction("setup", 0)
	b := ir.NewBuilder(setup)
	head := b.Alloc(64)
	node := b.Alloc(64)
	b.Store(head, 0, node)
	magic := b.Const(40_000_000)
	b.Store(node, 0, magic)
	b.Ret(head)
	// read(root): chase root -> node -> value.
	read := m.NewFunction("read", 1)
	rb := ir.NewBuilder(read)
	n := rb.Load(rb.Param(0), 0)
	rb.Ret(rb.Load(n, 0))
	return m
}

func buildSpy() *ir.Module {
	m := ir.NewModule("spy")
	f := m.NewFunction("main", 1)
	b := ir.NewBuilder(f)
	b.Ret(b.Load(b.Param(0), 0)) // read someone else's memory
	return m
}

func main() {
	// Compile + attest.
	img, err := pik.BuildImage(buildApp(), platformKey)
	if err != nil {
		panic(err)
	}
	fmt.Printf("compiled app: %d guards injected, %d hoisted, attested (%x...)\n",
		img.GuardsInjected, img.GuardsHoisted, img.Sig[:8])

	// Load into the kernel and run.
	k, err := pik.NewKernel(platformKey)
	if err != nil {
		panic(err)
	}
	app, err := k.Load("app", img)
	if err != nil {
		panic(err)
	}
	root, err := app.Call("setup")
	if err != nil {
		panic(err)
	}
	v, err := app.Call("read", root)
	fmt.Printf("app.read(root) = %d (err=%v)\n", v, err)

	// The kernel evacuates the process's memory to a fresh arena —
	// no pages, arbitrary granularity, pointers patched.
	cost, err := k.CompactAll(map[*pik.Process]mem.Addr{app: 0x2000_0000})
	if err != nil {
		panic(err)
	}
	newRoot := app.Table.Regions()[0].Base
	v2, err := app.Call("read", uint64(newRoot))
	fmt.Printf("after kernel compaction (cost %d cyc): read = %d (err=%v)\n", cost, v2, err)

	// A tampered image is refused.
	evil, _ := pik.BuildImage(buildApp(), platformKey)
	evil.Mod.Funcs["setup"].Blocks[0].Instrs[0].Imm = 1 << 30
	if _, err := k.Load("tampered", evil); err != nil {
		fmt.Printf("tampered image rejected: %v\n", err)
	}

	// A spy process touching the app's memory takes a protection fault.
	spyImg, _ := pik.BuildImage(buildSpy(), platformKey)
	spy, _ := k.Load("spy", spyImg)
	if _, err := spy.Call("main", uint64(newRoot)); err != nil {
		fmt.Printf("spy process killed: %v\n", err)
	}
}

// Heartbeat example: run the TPAL-style work-stealing runtime on all
// three signaling substrates at a fine heartbeat (♥ = 20µs, 16 CPUs) and
// watch the Linux mechanisms fall behind while Nautilus holds the rate.
//
//	go run ./examples/heartbeat
package main

import (
	"fmt"

	"repro/internal/heartbeat"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	const (
		cpus          = 16
		heartbeatUS   = 20
		items         = 3_000_000
		cyclesPerItem = 40
		grain         = 64
	)
	mdl := model.Default()
	fmt.Printf("TPAL heartbeat runtime: %d CPUs, ♥ = %dµs, %d items x %d cycles\n\n",
		cpus, heartbeatUS, items, cyclesPerItem)
	fmt.Printf("%-15s %12s %12s %10s %10s %12s\n",
		"substrate", "target/Mcyc", "achieved", "gap CV", "overhead", "done (Mcyc)")

	for _, sub := range []heartbeat.Substrate{
		heartbeat.SubstrateNautilusIPI,
		heartbeat.SubstrateLinuxSignals,
		heartbeat.SubstrateLinuxPolling,
	} {
		eng := sim.NewEngine()
		m := machine.New(eng, mdl, machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 42)
		cfg := heartbeat.DefaultConfig()
		cfg.Substrate = sub
		cfg.PeriodCycles = mdl.MicrosToCycles(heartbeatUS)
		rt := heartbeat.New(m, cfg)
		rt.Run(items, cyclesPerItem, grain)

		target := 1e6 / float64(cfg.PeriodCycles)
		achieved := stats.Mean(rt.AchievedRates())
		cv := stats.CoefVar(rt.InterBeatGaps())
		fmt.Printf("%-15s %12.1f %12.1f %10.3f %9.1f%% %12.1f\n",
			sub, target, achieved, cv,
			rt.OverheadFraction()*100, float64(rt.DoneAt())/1e6)
	}
	fmt.Println("\nNautilus delivers the target rate with near-zero jitter;")
	fmt.Println("Linux signals collapse below the kernel timer floor; polling")
	fmt.Println("holds the rate but pays 13-22% in compiler-inserted checks.")
}
